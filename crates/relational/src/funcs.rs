//! Scalar function registry.
//!
//! Value correspondences (paper Def 3.1) are *functions over source
//! attribute values*. The registry holds the built-in functions the paper
//! mentions (`concat` for `Kids.contactPh`, arithmetic for
//! `Kids.FamilyIncome`) and accepts user-registered Rust closures so
//! applications can plug in arbitrary transformation functions.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::error::{Error, Result};
use crate::value::Value;

/// A scalar function implementation.
pub type ScalarFn = Arc<dyn Fn(&[Value]) -> Result<Value> + Send + Sync>;

/// Arity specification for a registered function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arity {
    /// Exactly `n` arguments.
    Exact(usize),
    /// At least `n` arguments.
    AtLeast(usize),
}

impl Arity {
    fn accepts(self, n: usize) -> bool {
        match self {
            Arity::Exact(k) => n == k,
            Arity::AtLeast(k) => n >= k,
        }
    }

    fn expected(self) -> usize {
        match self {
            Arity::Exact(k) | Arity::AtLeast(k) => k,
        }
    }
}

/// A registry mapping lowercase function names to implementations.
#[derive(Clone)]
pub struct FuncRegistry {
    funcs: HashMap<String, (Arity, ScalarFn)>,
}

impl fmt::Debug for FuncRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut names: Vec<&str> = self.funcs.keys().map(String::as_str).collect();
        names.sort_unstable();
        f.debug_struct("FuncRegistry")
            .field("functions", &names)
            .finish()
    }
}

impl Default for FuncRegistry {
    fn default() -> Self {
        FuncRegistry::with_builtins()
    }
}

impl FuncRegistry {
    /// An empty registry (no builtins).
    #[must_use]
    pub fn empty() -> FuncRegistry {
        FuncRegistry {
            funcs: HashMap::new(),
        }
    }

    /// The standard registry with all built-in functions.
    #[must_use]
    pub fn with_builtins() -> FuncRegistry {
        let mut r = FuncRegistry::empty();
        r.register("concat", Arity::AtLeast(1), Arc::new(builtin_concat));
        r.register("coalesce", Arity::AtLeast(1), Arc::new(builtin_coalesce));
        r.register("upper", Arity::Exact(1), Arc::new(builtin_upper));
        r.register("lower", Arity::Exact(1), Arc::new(builtin_lower));
        r.register("length", Arity::Exact(1), Arc::new(builtin_length));
        r.register("abs", Arity::Exact(1), Arc::new(builtin_abs));
        r.register("substr", Arity::Exact(3), Arc::new(builtin_substr));
        r.register("nullif", Arity::Exact(2), Arc::new(builtin_nullif));
        r.register("trim", Arity::Exact(1), Arc::new(builtin_trim));
        r.register("replace", Arity::Exact(3), Arc::new(builtin_replace));
        r.register(
            "starts_with",
            Arity::Exact(2),
            Arc::new(builtin_starts_with),
        );
        r.register("ends_with", Arity::Exact(2), Arc::new(builtin_ends_with));
        r.register("lpad", Arity::Exact(3), Arc::new(builtin_lpad));
        r.register("to_int", Arity::Exact(1), Arc::new(builtin_to_int));
        r.register("to_str", Arity::Exact(1), Arc::new(builtin_to_str));
        r
    }

    /// Register (or replace) a function under `name` (case-insensitive).
    pub fn register(&mut self, name: &str, arity: Arity, f: ScalarFn) {
        self.funcs.insert(name.to_ascii_lowercase(), (arity, f));
    }

    /// Is `name` registered?
    #[must_use]
    pub fn contains(&self, name: &str) -> bool {
        self.funcs.contains_key(&name.to_ascii_lowercase())
    }

    /// Call a function by name, validating arity.
    pub fn call(&self, name: &str, args: &[Value]) -> Result<Value> {
        let key = name.to_ascii_lowercase();
        let (arity, f) = self
            .funcs
            .get(&key)
            .ok_or_else(|| Error::UnknownFunction(name.to_owned()))?;
        if !arity.accepts(args.len()) {
            return Err(Error::FunctionArity {
                name: name.to_owned(),
                expected: arity.expected(),
                got: args.len(),
            });
        }
        f(args)
    }
}

fn string_arg(name: &str, v: &Value) -> Result<String> {
    match v {
        Value::Str(s) => Ok(s.clone()),
        Value::Int(i) => Ok(i.to_string()),
        Value::Float(f) => Ok(f.to_string()),
        Value::Bool(b) => Ok(b.to_string()),
        Value::Null => Err(Error::TypeMismatch(format!("{name}: unexpected null"))),
    }
}

/// SQL-style `concat`: null if **any** argument is null, otherwise the
/// string concatenation of all arguments. The any-null rule is what makes
/// the paper's `contactPh` correspondence produce a null target value for
/// associations that do not cover `PhoneDir`.
fn builtin_concat(args: &[Value]) -> Result<Value> {
    if args.iter().any(Value::is_null) {
        return Ok(Value::Null);
    }
    let mut out = String::new();
    for a in args {
        out.push_str(&string_arg("concat", a)?);
    }
    Ok(Value::Str(out))
}

fn builtin_coalesce(args: &[Value]) -> Result<Value> {
    Ok(args
        .iter()
        .find(|v| !v.is_null())
        .cloned()
        .unwrap_or(Value::Null))
}

fn builtin_upper(args: &[Value]) -> Result<Value> {
    match &args[0] {
        Value::Null => Ok(Value::Null),
        Value::Str(s) => Ok(Value::Str(s.to_uppercase())),
        v => Err(Error::TypeMismatch(format!(
            "upper: expected string, got {v}"
        ))),
    }
}

fn builtin_lower(args: &[Value]) -> Result<Value> {
    match &args[0] {
        Value::Null => Ok(Value::Null),
        Value::Str(s) => Ok(Value::Str(s.to_lowercase())),
        v => Err(Error::TypeMismatch(format!(
            "lower: expected string, got {v}"
        ))),
    }
}

fn builtin_length(args: &[Value]) -> Result<Value> {
    match &args[0] {
        Value::Null => Ok(Value::Null),
        Value::Str(s) => Ok(Value::Int(s.chars().count() as i64)),
        v => Err(Error::TypeMismatch(format!(
            "length: expected string, got {v}"
        ))),
    }
}

fn builtin_abs(args: &[Value]) -> Result<Value> {
    match &args[0] {
        Value::Null => Ok(Value::Null),
        Value::Int(i) => Ok(Value::Int(i.abs())),
        Value::Float(f) => Ok(Value::Float(f.abs())),
        v => Err(Error::TypeMismatch(format!(
            "abs: expected number, got {v}"
        ))),
    }
}

/// `substr(s, start, len)` with 1-based `start`, SQL style.
fn builtin_substr(args: &[Value]) -> Result<Value> {
    if args.iter().any(Value::is_null) {
        return Ok(Value::Null);
    }
    let s = match &args[0] {
        Value::Str(s) => s,
        v => {
            return Err(Error::TypeMismatch(format!(
                "substr: expected string, got {v}"
            )))
        }
    };
    let (start, len) = match (&args[1], &args[2]) {
        (Value::Int(a), Value::Int(b)) => (*a, *b),
        _ => {
            return Err(Error::TypeMismatch(
                "substr: start/len must be integers".into(),
            ))
        }
    };
    if start < 1 || len < 0 {
        return Err(Error::Invalid(
            "substr: start must be >= 1 and len >= 0".into(),
        ));
    }
    let chars: Vec<char> = s.chars().collect();
    let from = (start - 1) as usize;
    let to = (from + len as usize).min(chars.len());
    if from >= chars.len() {
        return Ok(Value::Str(String::new()));
    }
    Ok(Value::Str(chars[from..to].iter().collect()))
}

fn builtin_trim(args: &[Value]) -> Result<Value> {
    match &args[0] {
        Value::Null => Ok(Value::Null),
        Value::Str(s) => Ok(Value::Str(s.trim().to_owned())),
        v => Err(Error::TypeMismatch(format!(
            "trim: expected string, got {v}"
        ))),
    }
}

/// `replace(s, from, to)` — substring replacement, null-propagating.
fn builtin_replace(args: &[Value]) -> Result<Value> {
    if args.iter().any(Value::is_null) {
        return Ok(Value::Null);
    }
    match (&args[0], &args[1], &args[2]) {
        (Value::Str(s), Value::Str(from), Value::Str(to)) => {
            Ok(Value::Str(s.replace(from.as_str(), to)))
        }
        _ => Err(Error::TypeMismatch(
            "replace: expected three strings".into(),
        )),
    }
}

fn builtin_starts_with(args: &[Value]) -> Result<Value> {
    if args.iter().any(Value::is_null) {
        return Ok(Value::Null);
    }
    match (&args[0], &args[1]) {
        (Value::Str(s), Value::Str(p)) => Ok(Value::Bool(s.starts_with(p.as_str()))),
        _ => Err(Error::TypeMismatch(
            "starts_with: expected two strings".into(),
        )),
    }
}

fn builtin_ends_with(args: &[Value]) -> Result<Value> {
    if args.iter().any(Value::is_null) {
        return Ok(Value::Null);
    }
    match (&args[0], &args[1]) {
        (Value::Str(s), Value::Str(p)) => Ok(Value::Bool(s.ends_with(p.as_str()))),
        _ => Err(Error::TypeMismatch(
            "ends_with: expected two strings".into(),
        )),
    }
}

/// `lpad(s, len, pad)` — left-pad with `pad` to `len` characters (never
/// truncates below the original string).
fn builtin_lpad(args: &[Value]) -> Result<Value> {
    if args.iter().any(Value::is_null) {
        return Ok(Value::Null);
    }
    let (s, len, pad) = match (&args[0], &args[1], &args[2]) {
        (Value::Str(s), Value::Int(l), Value::Str(p)) => (s, *l, p),
        _ => return Err(Error::TypeMismatch("lpad: expected (str, int, str)".into())),
    };
    if pad.is_empty() || len < 0 {
        return Err(Error::Invalid(
            "lpad: pad must be non-empty and len >= 0".into(),
        ));
    }
    let want = len as usize;
    let have = s.chars().count();
    if have >= want {
        return Ok(Value::Str(s.clone()));
    }
    let mut out = String::new();
    let pad_chars: Vec<char> = pad.chars().collect();
    let mut i = 0;
    while out.chars().count() < want - have {
        out.push(pad_chars[i % pad_chars.len()]);
        i += 1;
    }
    out.push_str(s);
    Ok(Value::Str(out))
}

/// `to_int(v)` — parse a string / truncate a float to an integer; null on
/// unparseable strings (lenient, SQL CAST style for dirty source data).
fn builtin_to_int(args: &[Value]) -> Result<Value> {
    Ok(match &args[0] {
        Value::Null => Value::Null,
        Value::Int(i) => Value::Int(*i),
        Value::Float(f) => Value::Int(*f as i64),
        Value::Bool(b) => Value::Int(i64::from(*b)),
        Value::Str(s) => match s.trim().parse::<i64>() {
            Ok(i) => Value::Int(i),
            Err(_) => Value::Null,
        },
    })
}

fn builtin_to_str(args: &[Value]) -> Result<Value> {
    Ok(match &args[0] {
        Value::Null => Value::Null,
        v => Value::Str(v.to_string()),
    })
}

fn builtin_nullif(args: &[Value]) -> Result<Value> {
    if args[0].sql_eq(&args[1]).passes() {
        Ok(Value::Null)
    } else {
        Ok(args[0].clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg() -> FuncRegistry {
        FuncRegistry::with_builtins()
    }

    #[test]
    fn concat_joins_strings_and_numbers() {
        let v = reg()
            .call("concat", &["home".into(), ",".into(), "555-0100".into()])
            .unwrap();
        assert_eq!(v, Value::str("home,555-0100"));
        assert_eq!(
            reg().call("concat", &["x".into(), 5i64.into()]).unwrap(),
            Value::str("x5")
        );
    }

    #[test]
    fn concat_is_null_propagating() {
        let v = reg().call("concat", &["home".into(), Value::Null]).unwrap();
        assert_eq!(v, Value::Null);
    }

    #[test]
    fn coalesce_picks_first_non_null() {
        let v = reg()
            .call(
                "coalesce",
                &[Value::Null, Value::Null, "x".into(), "y".into()],
            )
            .unwrap();
        assert_eq!(v, Value::str("x"));
        assert_eq!(reg().call("coalesce", &[Value::Null]).unwrap(), Value::Null);
    }

    #[test]
    fn case_functions() {
        assert_eq!(
            reg().call("upper", &["maya".into()]).unwrap(),
            Value::str("MAYA")
        );
        assert_eq!(
            reg().call("lower", &["MAYA".into()]).unwrap(),
            Value::str("maya")
        );
        assert_eq!(reg().call("upper", &[Value::Null]).unwrap(), Value::Null);
    }

    #[test]
    fn length_and_abs() {
        assert_eq!(
            reg().call("length", &["Maya".into()]).unwrap(),
            Value::Int(4)
        );
        assert_eq!(reg().call("abs", &[(-7i64).into()]).unwrap(), Value::Int(7));
        assert_eq!(
            reg().call("abs", &[(-1.5f64).into()]).unwrap(),
            Value::Float(1.5)
        );
    }

    #[test]
    fn substr_is_one_based_and_clamped() {
        assert_eq!(
            reg()
                .call("substr", &["schoolbus".into(), 1i64.into(), 6i64.into()])
                .unwrap(),
            Value::str("school")
        );
        assert_eq!(
            reg()
                .call("substr", &["bus".into(), 2i64.into(), 10i64.into()])
                .unwrap(),
            Value::str("us")
        );
        assert_eq!(
            reg()
                .call("substr", &["bus".into(), 9i64.into(), 2i64.into()])
                .unwrap(),
            Value::str("")
        );
        assert!(reg()
            .call("substr", &["bus".into(), 0i64.into(), 1i64.into()])
            .is_err());
    }

    #[test]
    fn nullif_blanks_matching_values() {
        assert_eq!(
            reg().call("nullif", &["x".into(), "x".into()]).unwrap(),
            Value::Null
        );
        assert_eq!(
            reg().call("nullif", &["x".into(), "y".into()]).unwrap(),
            Value::str("x")
        );
    }

    #[test]
    fn string_utilities() {
        assert_eq!(
            reg().call("trim", &["  x  ".into()]).unwrap(),
            Value::str("x")
        );
        assert_eq!(
            reg()
                .call("replace", &["555-0101".into(), "-".into(), ".".into()])
                .unwrap(),
            Value::str("555.0101")
        );
        assert_eq!(
            reg()
                .call("starts_with", &["Maya".into(), "Ma".into()])
                .unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            reg()
                .call("ends_with", &["Maya".into(), "Ma".into()])
                .unwrap(),
            Value::Bool(false)
        );
        assert_eq!(reg().call("trim", &[Value::Null]).unwrap(), Value::Null);
    }

    #[test]
    fn lpad_pads_and_preserves_long_strings() {
        assert_eq!(
            reg()
                .call("lpad", &["7".into(), 3i64.into(), "0".into()])
                .unwrap(),
            Value::str("007")
        );
        assert_eq!(
            reg()
                .call("lpad", &["12345".into(), 3i64.into(), "0".into()])
                .unwrap(),
            Value::str("12345")
        );
        assert!(reg()
            .call("lpad", &["x".into(), 3i64.into(), "".into()])
            .is_err());
    }

    #[test]
    fn casts_are_lenient() {
        assert_eq!(
            reg().call("to_int", &[" 42 ".into()]).unwrap(),
            Value::Int(42)
        );
        assert_eq!(reg().call("to_int", &["4x2".into()]).unwrap(), Value::Null);
        assert_eq!(
            reg().call("to_int", &[Value::Float(3.9)]).unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            reg().call("to_str", &[42i64.into()]).unwrap(),
            Value::str("42")
        );
        assert_eq!(reg().call("to_str", &[Value::Null]).unwrap(), Value::Null);
    }

    #[test]
    fn unknown_function_and_arity_errors() {
        assert!(matches!(
            reg().call("nope", &[]),
            Err(Error::UnknownFunction(_))
        ));
        assert!(matches!(
            reg().call("upper", &["a".into(), "b".into()]),
            Err(Error::FunctionArity { .. })
        ));
    }

    #[test]
    fn names_are_case_insensitive() {
        assert_eq!(reg().call("UPPER", &["x".into()]).unwrap(), Value::str("X"));
    }

    #[test]
    fn custom_functions_can_be_registered() {
        let mut r = reg();
        r.register(
            "double",
            Arity::Exact(1),
            Arc::new(|args: &[Value]| args[0].add(&args[0])),
        );
        assert_eq!(r.call("double", &[21i64.into()]).unwrap(), Value::Int(42));
        assert!(r.contains("double"));
    }
}
