//! Derived tables: the working representation of join results and data
//! associations.
//!
//! A [`Table`] pairs a wide, qualified [`Scheme`] with rows. Unlike stored
//! [`Relation`](crate::relation::Relation)s, tables permit all-null rows
//! (padding during outer operations produces them transiently) and do not
//! deduplicate on push — operators deduplicate where the algebra requires it.

use std::fmt;

use crate::display::render_table;
use crate::error::Result;
use crate::schema::{ColumnRef, Scheme};
use crate::value::Value;

/// A derived table: wide scheme + rows.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    scheme: Scheme,
    rows: Vec<Vec<Value>>,
}

impl Table {
    /// Build from parts. Rows must match the scheme's arity; this is
    /// asserted (operator code constructs rows, not end users).
    #[must_use]
    pub fn new(scheme: Scheme, rows: Vec<Vec<Value>>) -> Table {
        debug_assert!(rows.iter().all(|r| r.len() == scheme.arity()));
        Table { scheme, rows }
    }

    /// An empty table over `scheme`.
    #[must_use]
    pub fn empty(scheme: Scheme) -> Table {
        Table {
            scheme,
            rows: Vec::new(),
        }
    }

    /// The scheme.
    #[must_use]
    pub fn scheme(&self) -> &Scheme {
        &self.scheme
    }

    /// The rows.
    #[must_use]
    pub fn rows(&self) -> &[Vec<Value>] {
        &self.rows
    }

    /// Mutable access to the rows. Callers must keep every row at the
    /// scheme's arity.
    pub fn rows_mut(&mut self) -> &mut Vec<Vec<Value>> {
        &mut self.rows
    }

    /// Consume into rows.
    #[must_use]
    pub fn into_rows(self) -> Vec<Vec<Value>> {
        self.rows
    }

    /// Number of rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the table empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Push a row (no dedup).
    pub fn push(&mut self, row: Vec<Value>) {
        debug_assert_eq!(row.len(), self.scheme.arity());
        self.rows.push(row);
    }

    /// Push a row only if an identical row is not already present.
    pub fn push_distinct(&mut self, row: Vec<Value>) {
        if !self.rows.contains(&row) {
            self.rows.push(row);
        }
    }

    /// Remove exact duplicate rows, preserving first-occurrence order.
    pub fn dedup(&mut self) {
        let mut seen: Vec<&Vec<Value>> = Vec::with_capacity(self.rows.len());
        let mut keep = vec![false; self.rows.len()];
        for (i, row) in self.rows.iter().enumerate() {
            if !seen.contains(&row) {
                seen.push(row);
                keep[i] = true;
            }
        }
        let mut i = 0;
        self.rows.retain(|_| {
            let k = keep[i];
            i += 1;
            k
        });
    }

    /// The value of `col` in row `row_idx`.
    pub fn value(&self, row_idx: usize, col: &ColumnRef) -> Result<&Value> {
        let idx = self.scheme.resolve(col)?;
        Ok(&self.rows[row_idx][idx])
    }

    /// Sort rows by the total value order, column by column. Gives
    /// deterministic output for golden tests and rendered figures.
    pub fn sort_canonical(&mut self) {
        self.rows.sort_by(|a, b| {
            for (x, y) in a.iter().zip(b.iter()) {
                let ord = x.total_cmp(y);
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
    }

    /// Is `row` null on every column of the qualifier? Used to compute
    /// coverage of data associations.
    pub fn qualifier_is_all_null(&self, row_idx: usize, qualifier: &str) -> bool {
        self.scheme
            .indexes_of_qualifier(qualifier)
            .iter()
            .all(|&i| self.rows[row_idx][i].is_null())
    }

    /// Project row `row_idx` onto the columns of `sub` (which must be a
    /// sub-scheme of this table's scheme).
    pub fn project_row(&self, row_idx: usize, sub: &Scheme) -> Result<Vec<Value>> {
        let pos = self.scheme.positions_of(sub)?;
        Ok(pos.iter().map(|&i| self.rows[row_idx][i].clone()).collect())
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&render_table(&self.scheme, &self.rows, &[]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::RelationBuilder;
    use crate::value::DataType;

    fn t() -> Table {
        RelationBuilder::new("R")
            .attr("a", DataType::Int)
            .attr("b", DataType::Str)
            .row(vec![2i64.into(), "y".into()])
            .row(vec![1i64.into(), "x".into()])
            .build()
            .unwrap()
            .to_table("R")
    }

    #[test]
    fn value_lookup() {
        let t = t();
        assert_eq!(
            t.value(0, &ColumnRef::qualified("R", "b")).unwrap(),
            &Value::str("y")
        );
        assert!(t.value(0, &ColumnRef::qualified("S", "b")).is_err());
    }

    #[test]
    fn sort_canonical_orders_rows() {
        let mut t = t();
        t.sort_canonical();
        assert_eq!(t.rows()[0][0], Value::Int(1));
        assert_eq!(t.rows()[1][0], Value::Int(2));
    }

    #[test]
    fn push_distinct_and_dedup() {
        let mut t = t();
        t.push_distinct(vec![1i64.into(), "x".into()]);
        assert_eq!(t.len(), 2);
        t.push(vec![1i64.into(), "x".into()]);
        assert_eq!(t.len(), 3);
        t.dedup();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn qualifier_null_detection() {
        let mut t = t();
        t.push(vec![Value::Null, Value::Null]);
        assert!(t.qualifier_is_all_null(2, "R"));
        assert!(!t.qualifier_is_all_null(0, "R"));
    }

    #[test]
    fn project_row_onto_sub_scheme() {
        let t = t();
        let sub = Scheme::new(vec![t.scheme().columns()[1].clone()]);
        assert_eq!(t.project_row(0, &sub).unwrap(), vec![Value::str("y")]);
    }

    #[test]
    fn display_contains_headers_and_null_dash() {
        let mut t = t();
        t.push(vec![Value::Null, "z".into()]);
        let s = t.to_string();
        assert!(s.contains("R.a"));
        assert!(s.contains("R.b"));
        assert!(s.contains('-'));
    }
}
