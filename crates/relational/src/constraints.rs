//! Schema constraints: keys, foreign keys, and not-null declarations.
//!
//! Clio mines and uses constraints in two ways (paper Secs 2, 5.1):
//! foreign keys seed the *schema knowledge* that powers data walks
//! (`Children.mid → Parents.ID`, `Children.fid → Parents.ID`), and target
//! not-null constraints become target filters (`Kids.ID <> null`).

use std::fmt;

use crate::database::Database;
use crate::error::{Error, Result};
use crate::value::Value;

/// A (candidate) key: the listed attributes uniquely identify tuples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Key {
    /// The constrained relation.
    pub relation: String,
    /// The key attributes.
    pub attrs: Vec<String>,
}

impl Key {
    /// Construct a key constraint.
    pub fn new(relation: impl Into<String>, attrs: Vec<&str>) -> Key {
        Key {
            relation: relation.into(),
            attrs: attrs.into_iter().map(str::to_owned).collect(),
        }
    }

    /// Check the key over a database instance. Tuples null on any key
    /// attribute are skipped (SQL unique semantics).
    pub fn check(&self, db: &Database) -> Result<()> {
        let rel = db.relation(&self.relation)?;
        let idxs: Vec<usize> = self
            .attrs
            .iter()
            .map(|a| rel.schema().index_of(a))
            .collect::<Result<_>>()?;
        let mut seen: Vec<Vec<&Value>> = Vec::with_capacity(rel.len());
        for row in rel.rows() {
            let key: Vec<&Value> = idxs.iter().map(|&i| &row[i]).collect();
            if key.iter().any(|v| v.is_null()) {
                continue;
            }
            if seen.contains(&key) {
                return Err(Error::KeyViolation {
                    relation: self.relation.clone(),
                    key: self.attrs.join(", "),
                });
            }
            seen.push(key);
        }
        Ok(())
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "key {}({})", self.relation, self.attrs.join(", "))
    }
}

/// A foreign key: `from_relation.from_attrs` references
/// `to_relation.to_attrs`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForeignKey {
    /// Referencing relation.
    pub from_relation: String,
    /// Referencing attributes.
    pub from_attrs: Vec<String>,
    /// Referenced relation.
    pub to_relation: String,
    /// Referenced attributes (typically a key of `to_relation`).
    pub to_attrs: Vec<String>,
}

impl ForeignKey {
    /// Construct a single-attribute foreign key (the common case in the
    /// paper: `Children.mid → Parents.ID`).
    pub fn simple(
        from_relation: impl Into<String>,
        from_attr: impl Into<String>,
        to_relation: impl Into<String>,
        to_attr: impl Into<String>,
    ) -> ForeignKey {
        ForeignKey {
            from_relation: from_relation.into(),
            from_attrs: vec![from_attr.into()],
            to_relation: to_relation.into(),
            to_attrs: vec![to_attr.into()],
        }
    }

    /// Check referential integrity over a database instance. Tuples null on
    /// any referencing attribute are exempt (SQL `MATCH SIMPLE`).
    pub fn check(&self, db: &Database) -> Result<()> {
        if self.from_attrs.len() != self.to_attrs.len() {
            return Err(Error::Invalid(format!(
                "foreign key arity mismatch: {} vs {}",
                self.from_attrs.len(),
                self.to_attrs.len()
            )));
        }
        let from = db.relation(&self.from_relation)?;
        let to = db.relation(&self.to_relation)?;
        let from_idx: Vec<usize> = self
            .from_attrs
            .iter()
            .map(|a| from.schema().index_of(a))
            .collect::<Result<_>>()?;
        let to_idx: Vec<usize> = self
            .to_attrs
            .iter()
            .map(|a| to.schema().index_of(a))
            .collect::<Result<_>>()?;
        'outer: for row in from.rows() {
            let probe: Vec<&Value> = from_idx.iter().map(|&i| &row[i]).collect();
            if probe.iter().any(|v| v.is_null()) {
                continue;
            }
            for target in to.rows() {
                if to_idx
                    .iter()
                    .zip(&probe)
                    .all(|(&ti, pv)| target[ti].sql_eq(pv).passes())
                {
                    continue 'outer;
                }
            }
            return Err(Error::Invalid(format!(
                "foreign key violation: {}({}) value {:?} not found in {}({})",
                self.from_relation,
                self.from_attrs.join(","),
                probe.iter().map(ToString::to_string).collect::<Vec<_>>(),
                self.to_relation,
                self.to_attrs.join(","),
            )));
        }
        Ok(())
    }
}

impl fmt::Display for ForeignKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fk {}({}) -> {}({})",
            self.from_relation,
            self.from_attrs.join(", "),
            self.to_relation,
            self.to_attrs.join(", ")
        )
    }
}

/// The constraint set attached to a database schema.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Constraints {
    /// Declared keys.
    pub keys: Vec<Key>,
    /// Declared foreign keys.
    pub foreign_keys: Vec<ForeignKey>,
}

impl Constraints {
    /// No constraints.
    #[must_use]
    pub fn none() -> Constraints {
        Constraints::default()
    }

    /// Foreign keys leaving `relation`.
    #[must_use]
    pub fn fks_from(&self, relation: &str) -> Vec<&ForeignKey> {
        self.foreign_keys
            .iter()
            .filter(|fk| fk.from_relation == relation)
            .collect()
    }

    /// Foreign keys arriving at `relation`.
    #[must_use]
    pub fn fks_to(&self, relation: &str) -> Vec<&ForeignKey> {
        self.foreign_keys
            .iter()
            .filter(|fk| fk.to_relation == relation)
            .collect()
    }

    /// Validate every constraint against a database instance.
    pub fn check_all(&self, db: &Database) -> Result<()> {
        for k in &self.keys {
            k.check(db)?;
        }
        for fk in &self.foreign_keys {
            fk.check(db)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;
    use crate::relation::RelationBuilder;
    use crate::value::DataType;

    fn db() -> Database {
        let parents = RelationBuilder::new("Parents")
            .attr_not_null("ID", DataType::Str)
            .attr("affiliation", DataType::Str)
            .row(vec!["201".into(), "IBM".into()])
            .row(vec!["202".into(), "UofT".into()])
            .build()
            .unwrap();
        let children = RelationBuilder::new("Children")
            .attr_not_null("ID", DataType::Str)
            .attr("mid", DataType::Str)
            .row(vec!["001".into(), "201".into()])
            .row(vec!["002".into(), Value::Null])
            .build()
            .unwrap();
        let mut db = Database::new();
        db.add_relation(parents).unwrap();
        db.add_relation(children).unwrap();
        db
    }

    #[test]
    fn key_check_passes_on_unique_values() {
        Key::new("Parents", vec!["ID"]).check(&db()).unwrap();
    }

    #[test]
    fn key_check_detects_duplicates() {
        let mut database = db();
        database
            .relation_mut("Parents")
            .unwrap()
            .insert(vec!["201".into(), "MIT".into()])
            .unwrap();
        let err = Key::new("Parents", vec!["ID"])
            .check(&database)
            .unwrap_err();
        assert!(matches!(err, Error::KeyViolation { .. }));
    }

    #[test]
    fn composite_key_checked_jointly() {
        let mut database = db();
        // (ID, affiliation) pairs remain unique even if we repeat an ID
        database
            .relation_mut("Parents")
            .unwrap()
            .insert(vec!["201".into(), "MIT".into()])
            .unwrap();
        Key::new("Parents", vec!["ID", "affiliation"])
            .check(&database)
            .unwrap();
    }

    #[test]
    fn fk_check_passes_and_skips_nulls() {
        ForeignKey::simple("Children", "mid", "Parents", "ID")
            .check(&db())
            .unwrap();
    }

    #[test]
    fn fk_check_detects_dangling_reference() {
        let mut database = db();
        database
            .relation_mut("Children")
            .unwrap()
            .insert(vec!["003".into(), "999".into()])
            .unwrap();
        assert!(ForeignKey::simple("Children", "mid", "Parents", "ID")
            .check(&database)
            .is_err());
    }

    #[test]
    fn constraint_set_navigation() {
        let mut c = Constraints::none();
        c.foreign_keys
            .push(ForeignKey::simple("Children", "mid", "Parents", "ID"));
        c.foreign_keys
            .push(ForeignKey::simple("Children", "fid", "Parents", "ID"));
        c.foreign_keys
            .push(ForeignKey::simple("PhoneDir", "ID", "Parents", "ID"));
        assert_eq!(c.fks_from("Children").len(), 2);
        assert_eq!(c.fks_to("Parents").len(), 3);
        assert!(c.fks_from("Parents").is_empty());
    }

    #[test]
    fn check_all_aggregates() {
        let mut c = Constraints::none();
        c.keys.push(Key::new("Parents", vec!["ID"]));
        c.foreign_keys
            .push(ForeignKey::simple("Children", "mid", "Parents", "ID"));
        c.check_all(&db()).unwrap();
    }

    #[test]
    fn displays() {
        assert_eq!(Key::new("P", vec!["ID"]).to_string(), "key P(ID)");
        assert_eq!(
            ForeignKey::simple("C", "mid", "P", "ID").to_string(),
            "fk C(mid) -> P(ID)"
        );
    }
}
