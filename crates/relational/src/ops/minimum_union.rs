//! Outer union and minimum union (paper Def 3.9).
//!
//! The **outer union** of `R1` and `R2` is the union of `R1` padded with
//! nulls on the columns only in `R2` and vice versa. The **minimum union**
//! `R1 ⊕ R2` is the outer union with strictly subsumed tuples removed —
//! the operator at the heart of full disjunctions.
//!
//! Minimum union is commutative but (famously) **not associative** when
//! applied to arbitrary relations (paper Sec 1 discusses why this makes
//! data-merging queries hard to manage); [`minimum_union_all`] therefore
//! combines any number of tables in one step — pad everything onto the
//! unified scheme first, then remove subsumed tuples once.

use crate::error::Result;
use crate::ops::subsumption::{remove_subsumed, SubsumptionAlgo};
use crate::schema::Scheme;
use crate::table::Table;
use crate::value::Value;

/// The unified scheme of several tables: columns of the first, then each
/// new column of subsequent tables in order.
pub fn unified_scheme(tables: &[&Table]) -> Scheme {
    let mut cols = Vec::new();
    for t in tables {
        for c in t.scheme().columns() {
            if !cols
                .iter()
                .any(|d: &crate::schema::Column| d.qualifier == c.qualifier && d.name == c.name)
            {
                cols.push(c.clone());
            }
        }
    }
    Scheme::new(cols)
}

/// Pad a table's rows onto `target` scheme (columns missing from the table
/// become null).
pub fn pad_to(table: &Table, target: &Scheme) -> Result<Table> {
    // position of each target column inside the source table, if present
    let mut out = Table::empty(target.clone());
    let mapping: Vec<Option<usize>> = target
        .columns()
        .iter()
        .map(|c| {
            table
                .scheme()
                .columns()
                .iter()
                .position(|d| d.qualifier == c.qualifier && d.name == c.name)
        })
        .collect();
    // every source column must appear in the target
    debug_assert!(table.scheme().columns().iter().all(|c| target
        .columns()
        .iter()
        .any(|d| d.qualifier == c.qualifier && d.name == c.name)));
    for row in table.rows() {
        out.push(
            mapping
                .iter()
                .map(|m| m.map_or(Value::Null, |i| row[i].clone()))
                .collect(),
        );
    }
    Ok(out)
}

/// Outer union of two tables (duplicates removed — relations are sets).
pub fn outer_union(a: &Table, b: &Table) -> Result<Table> {
    let scheme = unified_scheme(&[a, b]);
    let mut out = pad_to(a, &scheme)?;
    for row in pad_to(b, &scheme)?.into_rows() {
        out.push(row);
    }
    out.dedup();
    Ok(out)
}

/// Minimum union `a ⊕ b`: outer union with strictly subsumed tuples
/// removed.
///
/// ```
/// use clio_relational::prelude::*;
///
/// let ids = Table::new(
///     Scheme::new(vec![Column::new("K", "id", DataType::Str)]),
///     vec![vec!["002".into()]],
/// );
/// let full = Table::new(
///     Scheme::new(vec![
///         Column::new("K", "id", DataType::Str),
///         Column::new("K", "phone", DataType::Str),
///     ]),
///     vec![vec!["002".into(), "555-0103".into()]],
/// );
/// // the bare id tuple is subsumed by the phone-bearing one
/// let merged = minimum_union(&ids, &full, SubsumptionAlgo::Partitioned).unwrap();
/// assert_eq!(merged.len(), 1);
/// assert_eq!(merged.rows()[0][1], Value::str("555-0103"));
/// ```
pub fn minimum_union(a: &Table, b: &Table, algo: SubsumptionAlgo) -> Result<Table> {
    let _span = clio_obs::span("ops.minimum_union");
    let mut out = outer_union(a, b)?;
    remove_subsumed(&mut out, algo);
    Ok(out)
}

/// N-ary minimum union: pad all inputs onto the unified scheme, take the
/// union, then remove strictly subsumed tuples **once**. Because minimum
/// union is not associative in general, this one-shot form is the correct
/// way to combine the `F(J)` tables of a full disjunction.
pub fn minimum_union_all(tables: &[&Table], algo: SubsumptionAlgo) -> Result<Table> {
    let _span = clio_obs::span("ops.minimum_union_all");
    if tables.is_empty() {
        return Ok(Table::empty(Scheme::empty()));
    }
    let scheme = unified_scheme(tables);
    let mut out = Table::empty(scheme.clone());
    for t in tables {
        for row in pad_to(t, &scheme)?.into_rows() {
            out.push(row);
        }
    }
    remove_subsumed(&mut out, algo);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::RelationBuilder;
    use crate::value::DataType;

    fn children_parents() -> Table {
        // R1 = Children ⋈ Parents (qualified C.*, P.*)
        RelationBuilder::new("CP")
            .attr("cid", DataType::Str)
            .attr("pid", DataType::Str)
            .row(vec!["002".into(), "202".into()])
            .build()
            .unwrap()
            .to_table("CP")
    }

    fn table(qualifier: &str, attrs: &[&str], rows: Vec<Vec<Value>>) -> Table {
        let mut b = RelationBuilder::new(qualifier);
        for a in attrs {
            b = b.attr(*a, DataType::Str);
        }
        for r in rows {
            b = b.row(r);
        }
        b.build().unwrap().to_table(qualifier)
    }

    #[test]
    fn unified_scheme_keeps_order_first_seen() {
        let a = table("A", &["x", "y"], vec![]);
        let b = table("B", &["z"], vec![]);
        let s = unified_scheme(&[&a, &b]);
        let names: Vec<String> = s.columns().iter().map(|c| c.qualified_name()).collect();
        assert_eq!(names, vec!["A.x", "A.y", "B.z"]);
    }

    #[test]
    fn pad_fills_missing_columns_with_null() {
        let a = table("A", &["x"], vec![vec!["1".into()]]);
        let b = table("B", &["z"], vec![]);
        let s = unified_scheme(&[&a, &b]);
        let padded = pad_to(&a, &s).unwrap();
        assert_eq!(padded.rows()[0], vec![Value::str("1"), Value::Null]);
    }

    #[test]
    fn outer_union_of_disjoint_schemes() {
        let a = table("A", &["x"], vec![vec!["1".into()]]);
        let b = table("B", &["z"], vec![vec!["2".into()]]);
        let u = outer_union(&a, &b).unwrap();
        assert_eq!(u.len(), 2);
        assert_eq!(u.rows()[0], vec![Value::str("1"), Value::Null]);
        assert_eq!(u.rows()[1], vec![Value::Null, Value::str("2")]);
    }

    #[test]
    fn outer_union_same_scheme_is_plain_union() {
        let a = table("A", &["x"], vec![vec!["1".into()], vec!["2".into()]]);
        let b = table("A", &["x"], vec![vec!["2".into()], vec!["3".into()]]);
        let u = outer_union(&a, &b).unwrap();
        assert_eq!(u.len(), 3);
    }

    #[test]
    fn minimum_union_removes_subsumed() {
        // Example 3.10 shape: R1 = C⋈P (padded), R2 = C⋈P⋈Ph; if every R1
        // tuple extends to an R2 tuple, R1 ⊕ R2 = R2.
        let r1 = children_parents();
        let r2 = table(
            "Ph",
            &["phid", "number"],
            vec![vec!["202".into(), "555-0102".into()]],
        );
        // emulate r2 as a wider table containing the same C/P columns
        let wide = {
            let s = unified_scheme(&[&r1, &r2]);
            Table::new(
                s,
                vec![vec![
                    "002".into(),
                    "202".into(),
                    "202".into(),
                    "555-0102".into(),
                ]],
            )
        };
        let m = minimum_union(&r1, &wide, SubsumptionAlgo::Partitioned).unwrap();
        assert_eq!(m.len(), 1);
        assert_eq!(m.rows()[0][3], Value::str("555-0102"));
    }

    #[test]
    fn minimum_union_keeps_unextended_tuples() {
        // a parent with no phone survives the minimum union
        let r1 = table(
            "CP2",
            &["cid", "pid"],
            vec![
                vec!["002".into(), "202".into()],
                vec!["009".into(), "205".into()],
            ],
        );
        let s = unified_scheme(&[&r1, &table("Ph", &["number"], vec![])]);
        let wide = Table::new(s, vec![vec!["002".into(), "202".into(), "555".into()]]);
        let m = minimum_union(&r1, &wide, SubsumptionAlgo::Naive).unwrap();
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn nary_minimum_union_is_order_insensitive() {
        let a = table("A", &["x"], vec![vec!["1".into()]]);
        let b = table("B", &["y"], vec![vec!["2".into()]]);
        let s = unified_scheme(&[&a, &b]);
        let ab = Table::new(s, vec![vec!["1".into(), "2".into()]]);
        let m1 = minimum_union_all(&[&a, &b, &ab], SubsumptionAlgo::Partitioned).unwrap();
        let m2 = minimum_union_all(&[&ab, &b, &a], SubsumptionAlgo::Partitioned).unwrap();
        assert_eq!(m1.len(), 1);
        assert_eq!(m2.len(), 1);
    }

    #[test]
    fn empty_input_list() {
        let m = minimum_union_all(&[], SubsumptionAlgo::Partitioned).unwrap();
        assert!(m.is_empty());
        assert_eq!(m.scheme().arity(), 0);
    }
}
