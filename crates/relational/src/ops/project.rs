//! Projection: compute output columns from expressions or column subsets.

use crate::error::Result;
use crate::expr::Expr;
use crate::funcs::FuncRegistry;
use crate::schema::{Column, Scheme};
use crate::table::Table;
use crate::value::DataType;

/// π over expressions: each `(expr, qualifier, name, ty)` becomes an output
/// column. This is how mapping queries apply value correspondences to data
/// associations (paper Def 3.14's `SELECT v_1(...) AS B_1, ...`).
pub fn project(table: &Table, outputs: &[(Expr, Column)], funcs: &FuncRegistry) -> Result<Table> {
    let bound: Vec<_> = outputs
        .iter()
        .map(|(e, _)| e.bind(table.scheme()))
        .collect::<Result<_>>()?;
    let scheme = Scheme::new(outputs.iter().map(|(_, c)| c.clone()).collect());
    let mut out = Table::empty(scheme);
    for row in table.rows() {
        let mut new_row = Vec::with_capacity(bound.len());
        for b in &bound {
            new_row.push(b.eval(row, funcs)?);
        }
        out.push(new_row);
    }
    Ok(out)
}

/// π over plain columns, by qualified name (`"Q.attr"`).
pub fn project_columns(table: &Table, cols: &[&str], funcs: &FuncRegistry) -> Result<Table> {
    let outputs: Vec<(Expr, Column)> = cols
        .iter()
        .map(|spec| {
            let e = Expr::col(spec);
            let idx = table.scheme().resolve(match &e {
                Expr::Column(c) => c,
                _ => unreachable!(),
            })?;
            let c = table.scheme().columns()[idx].clone();
            Ok((e, c))
        })
        .collect::<Result<_>>()?;
    project(table, &outputs, funcs)
}

/// Helper to name an output column when projecting expressions.
#[must_use]
pub fn out_col(qualifier: &str, name: &str, ty: DataType) -> Column {
    Column::new(qualifier, name, ty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;
    use crate::relation::RelationBuilder;
    use crate::value::{DataType, Value};

    fn table() -> Table {
        RelationBuilder::new("P")
            .attr("ID", DataType::Str)
            .attr("salary", DataType::Int)
            .row(vec!["201".into(), 50i64.into()])
            .row(vec!["202".into(), Value::Null])
            .build()
            .unwrap()
            .to_table("P")
    }

    #[test]
    fn project_columns_by_name() {
        let out = project_columns(&table(), &["P.salary"], &FuncRegistry::with_builtins()).unwrap();
        assert_eq!(out.scheme().arity(), 1);
        assert_eq!(out.rows()[0][0], Value::Int(50));
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn project_expressions_computes_new_values() {
        let outputs = vec![(
            parse_expr("P.salary * 2").unwrap(),
            out_col("Kids", "FamilyIncome", DataType::Int),
        )];
        let out = project(&table(), &outputs, &FuncRegistry::with_builtins()).unwrap();
        assert_eq!(
            out.scheme().columns()[0].qualified_name(),
            "Kids.FamilyIncome"
        );
        assert_eq!(out.rows()[0][0], Value::Int(100));
        assert_eq!(out.rows()[1][0], Value::Null); // null propagates
    }

    #[test]
    fn unknown_column_errors() {
        assert!(project_columns(&table(), &["P.nope"], &FuncRegistry::with_builtins()).is_err());
    }
}
