//! Grouping and aggregation.
//!
//! The paper's Def 3.1 allows a value correspondence to combine "a value
//! (or **set of values**) from a source database"; its `FamilyIncome`
//! example sums salaries. With relation copies the paper expresses the
//! two-parent case; the general set-valued form needs aggregation, which
//! this module supplies as an engine-level operator:
//! `group_by(table, keys, aggregates)`.
//!
//! Null handling follows SQL: aggregates skip nulls; `COUNT(*)` counts
//! rows; an aggregate over an empty/all-null group is null (except
//! `COUNT`, which is 0).

use std::collections::HashMap;

use crate::error::{Error, Result};
use crate::expr::Expr;
use crate::funcs::FuncRegistry;
use crate::schema::{Column, Scheme};
use crate::table::Table;
use crate::value::{DataType, Value};

/// An aggregate function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// Number of rows in the group (counts nulls too).
    CountRows,
    /// Number of non-null values of the aggregated expression.
    Count,
    /// Sum of non-null numeric values.
    Sum,
    /// Minimum non-null value (SQL ordering).
    Min,
    /// Maximum non-null value.
    Max,
    /// Arithmetic mean of non-null numeric values.
    Avg,
}

impl AggFunc {
    /// Render as SQL.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::CountRows => "COUNT(*)",
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Avg => "AVG",
        }
    }
}

/// One aggregate output column.
#[derive(Debug, Clone, PartialEq)]
pub struct Aggregate {
    /// The function.
    pub func: AggFunc,
    /// The aggregated expression (ignored for `CountRows`).
    pub expr: Expr,
    /// Output column.
    pub output: Column,
}

impl Aggregate {
    /// Construct an aggregate over a qualified column.
    pub fn over(func: AggFunc, source_col: &str, qualifier: &str, name: &str) -> Aggregate {
        let ty = match func {
            AggFunc::CountRows | AggFunc::Count => DataType::Int,
            AggFunc::Avg => DataType::Float,
            _ => DataType::Int, // numeric; Min/Max of strings still works at runtime
        };
        Aggregate {
            func,
            expr: Expr::col(source_col),
            output: Column::new(qualifier, name, ty),
        }
    }
}

/// Group `table` by the given key columns (qualified names) and compute
/// the aggregates per group. Output scheme: key columns (in the given
/// order) followed by the aggregate outputs. Groups follow SQL `GROUP BY`
/// semantics: nulls form their own group per distinct key combination.
///
/// ```
/// use clio_relational::prelude::*;
///
/// let lines = RelationBuilder::new("L")
///     .attr("ord", DataType::Str)
///     .attr("amount", DataType::Int)
///     .row(vec!["O-1".into(), 500i64.into()])
///     .row(vec!["O-1".into(), 1250i64.into()])
///     .row(vec!["O-2".into(), 2400i64.into()])
///     .build()
///     .unwrap()
///     .to_table("L");
/// let totals = group_by(
///     &lines,
///     &["L.ord"],
///     &[Aggregate::over(AggFunc::Sum, "L.amount", "T", "total")],
///     &FuncRegistry::with_builtins(),
/// )
/// .unwrap();
/// assert_eq!(totals.rows()[0], vec![Value::str("O-1"), Value::Int(1750)]);
/// ```
pub fn group_by(
    table: &Table,
    keys: &[&str],
    aggregates: &[Aggregate],
    funcs: &FuncRegistry,
) -> Result<Table> {
    let key_idx: Vec<usize> = keys
        .iter()
        .map(|k| {
            table
                .scheme()
                .resolve(&crate::schema::ColumnRef::parse_simple(k))
        })
        .collect::<Result<_>>()?;
    let bound: Vec<_> = aggregates
        .iter()
        .map(|a| a.expr.bind(table.scheme()))
        .collect::<Result<_>>()?;

    let mut out_cols: Vec<Column> = key_idx
        .iter()
        .map(|&i| table.scheme().columns()[i].clone())
        .collect();
    out_cols.extend(aggregates.iter().map(|a| a.output.clone()));
    let out_scheme = Scheme::new(out_cols);

    // group rows, preserving first-appearance order of groups
    let mut order: Vec<Vec<Value>> = Vec::new();
    let mut groups: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
    for (ri, row) in table.rows().iter().enumerate() {
        let key: Vec<Value> = key_idx.iter().map(|&i| row[i].clone()).collect();
        match groups.get_mut(&key) {
            Some(g) => g.push(ri),
            None => {
                groups.insert(key.clone(), vec![ri]);
                order.push(key);
            }
        }
    }

    let mut out = Table::empty(out_scheme);
    for key in order {
        let members = &groups[&key];
        let mut row = key.clone();
        for (a, b) in aggregates.iter().zip(&bound) {
            let mut values: Vec<Value> = Vec::with_capacity(members.len());
            for &ri in members {
                values.push(b.eval(&table.rows()[ri], funcs)?);
            }
            row.push(fold_aggregate(a.func, &values)?);
        }
        out.push(row);
    }
    Ok(out)
}

fn fold_aggregate(func: AggFunc, values: &[Value]) -> Result<Value> {
    let non_null: Vec<&Value> = values.iter().filter(|v| !v.is_null()).collect();
    Ok(match func {
        AggFunc::CountRows => Value::Int(values.len() as i64),
        AggFunc::Count => Value::Int(non_null.len() as i64),
        AggFunc::Sum => {
            let mut acc: Option<Value> = None;
            for v in non_null {
                acc = Some(match acc {
                    None => (*v).clone(),
                    Some(a) => a.add(v)?,
                });
            }
            acc.unwrap_or(Value::Null)
        }
        AggFunc::Min | AggFunc::Max => {
            let mut best: Option<&Value> = None;
            for v in non_null {
                best = Some(match best {
                    None => v,
                    Some(b) => match v.sql_cmp(b) {
                        Some(std::cmp::Ordering::Less) if func == AggFunc::Min => v,
                        Some(std::cmp::Ordering::Greater) if func == AggFunc::Max => v,
                        Some(_) => b,
                        None => {
                            return Err(Error::TypeMismatch(
                                "MIN/MAX over incomparable values".into(),
                            ))
                        }
                    },
                });
            }
            best.cloned().unwrap_or(Value::Null)
        }
        AggFunc::Avg => {
            if non_null.is_empty() {
                Value::Null
            } else {
                let mut sum = 0.0f64;
                for v in &non_null {
                    sum += v.as_f64().ok_or_else(|| {
                        Error::TypeMismatch(format!("AVG over non-numeric value {v}"))
                    })?;
                }
                Value::Float(sum / non_null.len() as f64)
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::RelationBuilder;

    /// Children joined with ALL their parents (one row per parent).
    fn table() -> Table {
        RelationBuilder::new("CP")
            .attr("child", DataType::Str)
            .attr("salary", DataType::Int)
            .attr("affiliation", DataType::Str)
            .row(vec!["001".into(), 90_000i64.into(), "IBM".into()])
            .row(vec!["001".into(), 85_000i64.into(), "UofT".into()])
            .row(vec!["002".into(), 95_000i64.into(), "Almaden".into()])
            .row(vec!["002".into(), Value::Null, "AT&T".into()])
            .row(vec!["004".into(), Value::Null, Value::Null])
            .build()
            .unwrap()
            .to_table("CP")
    }

    fn funcs() -> FuncRegistry {
        FuncRegistry::with_builtins()
    }

    #[test]
    fn family_income_as_sum_over_parents() {
        // the set-valued form of Example 3.2's FamilyIncome
        let out = group_by(
            &table(),
            &["CP.child"],
            &[Aggregate::over(
                AggFunc::Sum,
                "CP.salary",
                "Kids",
                "FamilyIncome",
            )],
            &funcs(),
        )
        .unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(
            out.scheme().columns()[1].qualified_name(),
            "Kids.FamilyIncome"
        );
        assert_eq!(out.rows()[0], vec!["001".into(), Value::Int(175_000)]);
        assert_eq!(out.rows()[1], vec!["002".into(), Value::Int(95_000)]); // null skipped
        assert_eq!(out.rows()[2], vec!["004".into(), Value::Null]); // all null
    }

    #[test]
    fn count_variants() {
        let out = group_by(
            &table(),
            &["CP.child"],
            &[
                Aggregate::over(AggFunc::CountRows, "CP.salary", "K", "rows"),
                Aggregate::over(AggFunc::Count, "CP.salary", "K", "salaries"),
            ],
            &funcs(),
        )
        .unwrap();
        assert_eq!(out.rows()[0][1], Value::Int(2));
        assert_eq!(out.rows()[0][2], Value::Int(2));
        assert_eq!(out.rows()[1][1], Value::Int(2));
        assert_eq!(out.rows()[1][2], Value::Int(1)); // one null salary
        assert_eq!(out.rows()[2][2], Value::Int(0));
    }

    #[test]
    fn min_max_avg() {
        let out = group_by(
            &table(),
            &["CP.child"],
            &[
                Aggregate::over(AggFunc::Min, "CP.salary", "K", "lo"),
                Aggregate::over(AggFunc::Max, "CP.salary", "K", "hi"),
                Aggregate::over(AggFunc::Avg, "CP.salary", "K", "avg"),
            ],
            &funcs(),
        )
        .unwrap();
        assert_eq!(out.rows()[0][1], Value::Int(85_000));
        assert_eq!(out.rows()[0][2], Value::Int(90_000));
        assert_eq!(out.rows()[0][3], Value::Float(87_500.0));
        assert_eq!(out.rows()[2][3], Value::Null);
    }

    #[test]
    fn min_max_on_strings() {
        let out = group_by(
            &table(),
            &["CP.child"],
            &[Aggregate::over(
                AggFunc::Min,
                "CP.affiliation",
                "K",
                "first",
            )],
            &funcs(),
        )
        .unwrap();
        assert_eq!(out.rows()[0][1], Value::str("IBM"));
    }

    #[test]
    fn group_over_expression() {
        // aggregate over a computed expression
        let agg = Aggregate {
            func: AggFunc::Sum,
            expr: crate::parser::parse_expr("CP.salary / 1000").unwrap(),
            output: Column::new("K", "k_salary", DataType::Int),
        };
        let out = group_by(&table(), &["CP.child"], &[agg], &funcs()).unwrap();
        assert_eq!(out.rows()[0][1], Value::Int(175));
    }

    #[test]
    fn empty_keys_aggregate_whole_table() {
        let out = group_by(
            &table(),
            &[],
            &[Aggregate::over(AggFunc::CountRows, "CP.child", "K", "n")],
            &funcs(),
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0][0], Value::Int(5));
    }

    #[test]
    fn null_keys_form_their_own_group() {
        let mut t = table();
        t.push(vec![Value::Null, 1i64.into(), Value::Null]);
        t.push(vec![Value::Null, 2i64.into(), Value::Null]);
        let out = group_by(
            &t,
            &["CP.child"],
            &[Aggregate::over(AggFunc::Sum, "CP.salary", "K", "s")],
            &funcs(),
        )
        .unwrap();
        assert_eq!(out.len(), 4);
        let null_group = out.rows().iter().find(|r| r[0].is_null()).unwrap();
        assert_eq!(null_group[1], Value::Int(3));
    }

    #[test]
    fn avg_of_strings_errors() {
        assert!(group_by(
            &table(),
            &["CP.child"],
            &[Aggregate::over(AggFunc::Avg, "CP.affiliation", "K", "x")],
            &funcs(),
        )
        .is_err());
    }

    #[test]
    fn unknown_key_errors() {
        assert!(group_by(&table(), &["CP.nope"], &[], &funcs()).is_err());
    }

    #[test]
    fn group_order_is_first_appearance() {
        let out = group_by(
            &table(),
            &["CP.child"],
            &[Aggregate::over(AggFunc::CountRows, "CP.child", "K", "n")],
            &funcs(),
        )
        .unwrap();
        let keys: Vec<String> = out.rows().iter().map(|r| r[0].to_string()).collect();
        assert_eq!(keys, vec!["001", "002", "004"]);
    }
}
