//! Selection: keep rows on which a predicate evaluates to `True`.

use clio_obs::metrics::{self, Counter};

use crate::error::Result;
use crate::expr::Expr;
use crate::funcs::FuncRegistry;
use crate::table::Table;

/// σ_pred(table): SQL filter semantics — `Unknown` rejects.
pub fn select(table: &Table, pred: &Expr, funcs: &FuncRegistry) -> Result<Table> {
    let bound = pred.bind(table.scheme())?;
    let mut out = Table::empty(table.scheme().clone());
    for row in table.rows() {
        if bound.eval_truth(row, funcs)?.passes() {
            out.push(row.clone());
        }
    }
    metrics::add(Counter::TuplesScanned, table.len() as u64);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;
    use crate::relation::RelationBuilder;
    use crate::value::{DataType, Value};

    fn table() -> Table {
        RelationBuilder::new("Children")
            .attr("ID", DataType::Str)
            .attr("age", DataType::Int)
            .row(vec!["001".into(), 6i64.into()])
            .row(vec!["002".into(), 4i64.into()])
            .row(vec!["003".into(), 9i64.into()])
            .row(vec!["004".into(), Value::Null])
            .build()
            .unwrap()
            .to_table("C")
    }

    fn funcs() -> FuncRegistry {
        FuncRegistry::with_builtins()
    }

    #[test]
    fn filters_by_predicate() {
        let out = select(&table(), &parse_expr("C.age < 7").unwrap(), &funcs()).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn unknown_rejects_null_age() {
        let out = select(&table(), &parse_expr("C.age < 100").unwrap(), &funcs()).unwrap();
        // row 004 has null age -> Unknown -> excluded
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn is_null_predicate_selects_null_rows() {
        let out = select(&table(), &parse_expr("C.age IS NULL").unwrap(), &funcs()).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0][0], Value::str("004"));
    }

    #[test]
    fn unknown_column_is_an_error() {
        assert!(select(&table(), &parse_expr("C.salary = 1").unwrap(), &funcs()).is_err());
    }

    #[test]
    fn true_literal_keeps_everything() {
        let out = select(&table(), &parse_expr("TRUE").unwrap(), &funcs()).unwrap();
        assert_eq!(out.len(), 4);
    }
}
