//! Ordering and limiting: `ORDER BY` over expressions and `LIMIT`.
//!
//! Used by front-ends to show stable, digestible samples of large
//! relations (the paper's Sec 6 concern with large data volumes) and by
//! tests to canonicalize results.

use crate::error::Result;
use crate::expr::Expr;
use crate::funcs::FuncRegistry;
use crate::table::Table;
use crate::value::Value;

/// One sort key.
#[derive(Debug, Clone, PartialEq)]
pub struct SortKey {
    /// The key expression.
    pub expr: Expr,
    /// Descending order?
    pub descending: bool,
    /// Place nulls last (default: nulls first, as in the total order).
    pub nulls_last: bool,
}

impl SortKey {
    /// Ascending key over a column.
    #[must_use]
    pub fn asc(col: &str) -> SortKey {
        SortKey {
            expr: Expr::col(col),
            descending: false,
            nulls_last: false,
        }
    }

    /// Descending key over a column.
    #[must_use]
    pub fn desc(col: &str) -> SortKey {
        SortKey {
            expr: Expr::col(col),
            descending: true,
            nulls_last: false,
        }
    }
}

/// Sort a table by the given keys (stable). Key expressions are evaluated
/// once per row.
pub fn order_by(table: &Table, keys: &[SortKey], funcs: &FuncRegistry) -> Result<Table> {
    let bound: Vec<_> = keys
        .iter()
        .map(|k| k.expr.bind(table.scheme()))
        .collect::<Result<_>>()?;
    // precompute key tuples
    let mut keyed: Vec<(Vec<Value>, &Vec<Value>)> = Vec::with_capacity(table.len());
    for row in table.rows() {
        let kv: Vec<Value> = bound
            .iter()
            .map(|b| b.eval(row, funcs))
            .collect::<Result<_>>()?;
        keyed.push((kv, row));
    }
    keyed.sort_by(|(ka, _), (kb, _)| {
        for (i, key) in keys.iter().enumerate() {
            let (a, b) = (&ka[i], &kb[i]);
            let ord = match (a.is_null(), b.is_null()) {
                (true, true) => std::cmp::Ordering::Equal,
                (true, false) => {
                    if key.nulls_last {
                        std::cmp::Ordering::Greater
                    } else {
                        std::cmp::Ordering::Less
                    }
                }
                (false, true) => {
                    if key.nulls_last {
                        std::cmp::Ordering::Less
                    } else {
                        std::cmp::Ordering::Greater
                    }
                }
                (false, false) => {
                    let o = a.total_cmp(b);
                    if key.descending {
                        o.reverse()
                    } else {
                        o
                    }
                }
            };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(Table::new(
        table.scheme().clone(),
        keyed.into_iter().map(|(_, r)| r.clone()).collect(),
    ))
}

/// The first `n` rows of a table.
#[must_use]
pub fn limit(table: &Table, n: usize) -> Table {
    Table::new(
        table.scheme().clone(),
        table.rows().iter().take(n).cloned().collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;
    use crate::relation::RelationBuilder;
    use crate::value::DataType;

    fn table() -> Table {
        RelationBuilder::new("R")
            .attr("name", DataType::Str)
            .attr("age", DataType::Int)
            .row(vec!["Maya".into(), 4i64.into()])
            .row(vec!["Anna".into(), 6i64.into()])
            .row(vec!["Ben".into(), 9i64.into()])
            .row(vec!["Tom".into(), Value::Null])
            .build()
            .unwrap()
            .to_table("R")
    }

    fn funcs() -> FuncRegistry {
        FuncRegistry::with_builtins()
    }

    #[test]
    fn ascending_with_nulls_first() {
        let out = order_by(&table(), &[SortKey::asc("R.age")], &funcs()).unwrap();
        let names: Vec<String> = out.rows().iter().map(|r| r[0].to_string()).collect();
        assert_eq!(names, vec!["Tom", "Maya", "Anna", "Ben"]);
    }

    #[test]
    fn descending_with_nulls_last() {
        let key = SortKey {
            nulls_last: true,
            ..SortKey::desc("R.age")
        };
        let out = order_by(&table(), &[key], &funcs()).unwrap();
        let names: Vec<String> = out.rows().iter().map(|r| r[0].to_string()).collect();
        assert_eq!(names, vec!["Ben", "Anna", "Maya", "Tom"]);
    }

    #[test]
    fn expression_keys_and_tie_breaks() {
        // sort by age bucket (CASE), then name
        let bucket = parse_expr("CASE WHEN R.age < 7 THEN 'young' ELSE 'old' END").unwrap();
        let keys = [
            SortKey {
                expr: bucket,
                descending: false,
                nulls_last: true,
            },
            SortKey::asc("R.name"),
        ];
        let out = order_by(&table(), &keys, &funcs()).unwrap();
        let names: Vec<String> = out.rows().iter().map(|r| r[0].to_string()).collect();
        // buckets: old {Ben, Tom(null->else 'old')}, young {Anna, Maya}
        assert_eq!(names, vec!["Ben", "Tom", "Anna", "Maya"]);
    }

    #[test]
    fn sort_is_stable() {
        let mut t = table();
        t.push(vec!["Zed".into(), 4i64.into()]);
        let out = order_by(&t, &[SortKey::asc("R.age")], &funcs()).unwrap();
        let names: Vec<String> = out.rows().iter().map(|r| r[0].to_string()).collect();
        // Maya appears before Zed (both age 4, original order preserved)
        let maya = names.iter().position(|n| n == "Maya").unwrap();
        let zed = names.iter().position(|n| n == "Zed").unwrap();
        assert!(maya < zed);
    }

    #[test]
    fn limit_truncates() {
        let out = limit(&table(), 2);
        assert_eq!(out.len(), 2);
        assert_eq!(limit(&table(), 100).len(), 4);
        assert_eq!(limit(&table(), 0).len(), 0);
    }

    #[test]
    fn unknown_key_errors() {
        assert!(order_by(&table(), &[SortKey::asc("R.nope")], &funcs()).is_err());
    }
}
