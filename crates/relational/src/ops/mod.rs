//! Relational operators over derived [`Table`](crate::table::Table)s.
//!
//! These are the algebraic building blocks of mapping queries and full
//! disjunctions: selection, projection, cartesian product, inner and outer
//! joins, outer union, subsumption removal, and minimum union (paper
//! Defs 3.5–3.11).

mod aggregate;
mod join;
mod minimum_union;
mod project;
mod select;
mod sort;
mod subsumption;

pub use aggregate::{group_by, AggFunc, Aggregate};
pub use join::{cartesian_product, join, JoinKind};
pub use minimum_union::{minimum_union, minimum_union_all, outer_union, pad_to, unified_scheme};
pub use project::{out_col, project, project_columns};
pub use select::select;
pub use sort::{limit, order_by, SortKey};
pub use subsumption::{
    remove_subsumed, remove_subsumed_naive, remove_subsumed_partitioned, strictly_subsumes,
    subsumes, SubsumptionAlgo,
};
