//! Tuple subsumption and subsumption removal (paper Def 3.8).
//!
//! A tuple `t1` **subsumes** `t2` (same scheme) when `t1[A] = t2[A]` for
//! every attribute `A` on which `t2` is non-null; the subsumption is
//! **strict** when `t1 ≠ t2`. The minimum union operator removes strictly
//! subsumed tuples — they are redundant, repeating information carried by a
//! more complete tuple (paper Sec 3.2).
//!
//! Two algorithms are provided:
//!
//! * [`remove_subsumed_naive`] — the definitional `O(n²)` pairwise check,
//!   kept as the reference implementation;
//! * [`remove_subsumed_partitioned`] — partitions tuples by their non-null
//!   mask; `t1` can only strictly subsume `t2` when
//!   `mask(t2) ⊊ mask(t1)`, so only mask pairs in strict-subset relation
//!   are probed, via a hash index on the subsumee-mask projection.
//!
//! Benchmark **B2** (`cargo bench -p clio-bench --bench subsumption`)
//! compares them; a property test asserts they agree.

use std::collections::HashMap;

use clio_obs::metrics::{self, Counter};

use crate::bitset::Bitset;
use crate::table::Table;
use crate::value::Value;

/// Algorithm selector for subsumption removal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SubsumptionAlgo {
    /// Definitional `O(n²)` pairwise comparison.
    Naive,
    /// Null-mask partitioning + hash probing (default).
    #[default]
    Partitioned,
}

/// Does `t1` subsume `t2`? Both rows must have the same arity.
#[must_use]
pub fn subsumes(t1: &[Value], t2: &[Value]) -> bool {
    debug_assert_eq!(t1.len(), t2.len());
    t1.iter().zip(t2).all(|(a, b)| b.is_null() || a == b)
}

/// Does `t1` strictly subsume `t2`?
#[must_use]
pub fn strictly_subsumes(t1: &[Value], t2: &[Value]) -> bool {
    t1 != t2 && subsumes(t1, t2)
}

/// Remove strictly subsumed rows (and exact duplicates) from `table`,
/// preserving first-occurrence order of the survivors.
pub fn remove_subsumed(table: &mut Table, algo: SubsumptionAlgo) {
    match algo {
        SubsumptionAlgo::Naive => remove_subsumed_naive(table),
        SubsumptionAlgo::Partitioned => remove_subsumed_partitioned(table),
    }
}

/// Reference implementation: pairwise `O(n²)` scan.
pub fn remove_subsumed_naive(table: &mut Table) {
    let _span = clio_obs::span("ops.remove_subsumed");
    table.dedup();
    let rows = table.rows();
    let n = rows.len();
    let mut keep = vec![true; n];
    let mut comparisons: u64 = 0;
    for i in 0..n {
        for j in 0..n {
            if i != j && keep[i] {
                comparisons += 1;
                if strictly_subsumes(&rows[j], &rows[i]) {
                    keep[i] = false;
                    break;
                }
            }
        }
    }
    let removed = keep.iter().filter(|k| !**k).count() as u64;
    metrics::add(Counter::SubsumptionComparisons, comparisons);
    metrics::add(Counter::TuplesSubsumed, removed);
    retain_by_mask(table, &keep);
}

/// Optimized implementation: group rows by non-null mask; for each strict
/// mask-subset pair `(m_small, m_big)`, probe a hash index of the big
/// group's rows projected onto `m_small`'s positions.
pub fn remove_subsumed_partitioned(table: &mut Table) {
    let _span = clio_obs::span("ops.remove_subsumed");
    table.dedup();
    let arity = table.scheme().arity();
    let rows = table.rows();
    let n = rows.len();

    // group row indexes by non-null mask
    let mut groups: HashMap<Bitset, Vec<usize>> = HashMap::new();
    for (i, row) in rows.iter().enumerate() {
        let mut mask = Bitset::new(arity);
        for (k, v) in row.iter().enumerate() {
            if !v.is_null() {
                mask.set(k);
            }
        }
        groups.entry(mask).or_default().push(i);
    }

    let masks: Vec<&Bitset> = groups.keys().collect();
    let mut keep = vec![true; n];
    // Work counter: index insertions + probes play the role the pairwise
    // tests play in the naive algorithm.
    let mut comparisons: u64 = 0;

    for small in &masks {
        let positions: Vec<usize> = small.iter_ones().collect();
        // Build the set of projections of all rows in strictly-larger groups.
        let mut projections: HashMap<Vec<&Value>, ()> = HashMap::new();
        for big in &masks {
            if small.is_strict_subset(big) {
                for &ri in &groups[*big] {
                    let proj: Vec<&Value> = positions.iter().map(|&p| &rows[ri][p]).collect();
                    comparisons += 1;
                    projections.insert(proj, ());
                }
            }
        }
        if projections.is_empty() {
            continue;
        }
        for &ri in &groups[*small] {
            let proj: Vec<&Value> = positions.iter().map(|&p| &rows[ri][p]).collect();
            comparisons += 1;
            if projections.contains_key(&proj) {
                keep[ri] = false;
            }
        }
    }

    let removed = keep.iter().filter(|k| !**k).count() as u64;
    metrics::add(Counter::SubsumptionComparisons, comparisons);
    metrics::add(Counter::TuplesSubsumed, removed);
    retain_by_mask(table, &keep);
}

fn retain_by_mask(table: &mut Table, keep: &[bool]) {
    let mut i = 0;
    table.rows_mut().retain(|_| {
        let k = keep[i];
        i += 1;
        k
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, Scheme};
    use crate::value::DataType;

    fn scheme(n: usize) -> Scheme {
        Scheme::new(
            (0..n)
                .map(|i| Column::new("R", format!("a{i}"), DataType::Str))
                .collect(),
        )
    }

    fn v(s: &str) -> Value {
        if s == "-" {
            Value::Null
        } else {
            Value::str(s)
        }
    }

    fn table(rows: &[&[&str]]) -> Table {
        let arity = rows.first().map_or(0, |r| r.len());
        Table::new(
            scheme(arity),
            rows.iter()
                .map(|r| r.iter().map(|s| v(s)).collect())
                .collect(),
        )
    }

    #[test]
    fn subsumes_basic() {
        assert!(subsumes(&[v("a"), v("b")], &[v("a"), v("-")]));
        assert!(!subsumes(&[v("a"), v("b")], &[v("x"), v("-")]));
        assert!(subsumes(&[v("a"), v("-")], &[v("a"), v("-")]));
        assert!(!strictly_subsumes(&[v("a"), v("-")], &[v("a"), v("-")]));
        assert!(strictly_subsumes(&[v("a"), v("b")], &[v("a"), v("-")]));
        // subsumption is one-directional
        assert!(!subsumes(&[v("a"), v("-")], &[v("a"), v("b")]));
    }

    #[test]
    fn paper_figure7_u_subsumed_by_v() {
        // u = Children+Parents association padded with nulls on PhoneDir,
        // v = the full association; v strictly subsumes u.
        let u = [v("002"), v("Maya"), v("202"), v("-"), v("-")];
        let w = [v("002"), v("Maya"), v("202"), v("202"), v("555")];
        assert!(strictly_subsumes(&w, &u));
    }

    #[test]
    fn removal_keeps_maximal_rows() {
        for algo in [SubsumptionAlgo::Naive, SubsumptionAlgo::Partitioned] {
            let mut t = table(&[
                &["a", "b", "-"],
                &["a", "b", "c"],
                &["x", "-", "-"],
                &["-", "-", "z"],
            ]);
            remove_subsumed(&mut t, algo);
            assert_eq!(t.len(), 3, "{algo:?}");
            assert!(t.rows().iter().all(|r| r[0] != v("a") || !r[2].is_null()));
        }
    }

    #[test]
    fn exact_duplicates_are_collapsed() {
        for algo in [SubsumptionAlgo::Naive, SubsumptionAlgo::Partitioned] {
            let mut t = table(&[&["a", "b"], &["a", "b"], &["c", "-"]]);
            remove_subsumed(&mut t, algo);
            assert_eq!(t.len(), 2, "{algo:?}");
        }
    }

    #[test]
    fn incomparable_rows_all_survive() {
        for algo in [SubsumptionAlgo::Naive, SubsumptionAlgo::Partitioned] {
            let mut t = table(&[&["a", "-"], &["-", "b"], &["c", "-"]]);
            remove_subsumed(&mut t, algo);
            assert_eq!(t.len(), 3, "{algo:?}");
        }
    }

    #[test]
    fn equal_masks_different_values_survive() {
        for algo in [SubsumptionAlgo::Naive, SubsumptionAlgo::Partitioned] {
            let mut t = table(&[&["a", "-"], &["b", "-"]]);
            remove_subsumed(&mut t, algo);
            assert_eq!(t.len(), 2, "{algo:?}");
        }
    }

    #[test]
    fn chains_of_subsumption_leave_only_top() {
        for algo in [SubsumptionAlgo::Naive, SubsumptionAlgo::Partitioned] {
            let mut t = table(&[&["a", "-", "-"], &["a", "b", "-"], &["a", "b", "c"]]);
            remove_subsumed(&mut t, algo);
            assert_eq!(t.len(), 1, "{algo:?}");
            assert_eq!(t.rows()[0][2], v("c"));
        }
    }

    #[test]
    fn order_of_survivors_is_preserved() {
        let mut t = table(&[&["z", "-"], &["a", "b"], &["z", "y"]]);
        remove_subsumed(&mut t, SubsumptionAlgo::Partitioned);
        assert_eq!(t.rows()[0][0], v("a"));
        assert_eq!(t.rows()[1][0], v("z"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn empty_table_is_fine() {
        for algo in [SubsumptionAlgo::Naive, SubsumptionAlgo::Partitioned] {
            let mut t = table(&[]);
            remove_subsumed(&mut t, algo);
            assert!(t.is_empty());
        }
    }
}
