//! Tuple subsumption and subsumption removal (paper Def 3.8).
//!
//! A tuple `t1` **subsumes** `t2` (same scheme) when `t1[A] = t2[A]` for
//! every attribute `A` on which `t2` is non-null; the subsumption is
//! **strict** when `t1 ≠ t2`. The minimum union operator removes strictly
//! subsumed tuples — they are redundant, repeating information carried by a
//! more complete tuple (paper Sec 3.2).
//!
//! Two base algorithms are provided, plus an adaptive dispatcher:
//!
//! * [`remove_subsumed_naive`] — the definitional `O(n²)` pairwise check,
//!   kept as the reference implementation;
//! * [`remove_subsumed_partitioned`] — partitions tuples by their non-null
//!   mask; `t1` can only strictly subsume `t2` when
//!   `mask(t2) ⊊ mask(t1)`, so only mask pairs in strict-subset relation
//!   are probed, via a hash index on the subsumee-mask projection. The
//!   per-mask probe passes are independent, so on large tables they run
//!   on the [`crate::exec`] worker pool (`subsumption.worker` spans);
//! * [`SubsumptionAlgo::Adaptive`] — the engine default: picks one of the
//!   two per call from the input size and the observed partition shape,
//!   recording each decision in the `subsumption.adaptive_choices`
//!   counter.
//!
//! Benchmark **B2** (`cargo bench -p clio-bench --bench subsumption`)
//! compares them; a property test asserts they agree.

use std::collections::{HashMap, HashSet};

use clio_obs::metrics::{self, Counter};

use crate::bitset::Bitset;
use crate::exec;
use crate::table::Table;
use crate::value::Value;

/// Algorithm selector for subsumption removal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SubsumptionAlgo {
    /// Definitional `O(n²)` pairwise comparison.
    Naive,
    /// Null-mask partitioning + hash probing.
    Partitioned,
    /// Per-call choice between the two from input size and partition
    /// shape (default; see [`remove_subsumed`] for the heuristic).
    #[default]
    Adaptive,
}

/// Tables at or below this row count always take the naive algorithm
/// under [`SubsumptionAlgo::Adaptive`] — at ≤ 64² cheap row comparisons
/// the quadratic scan beats the partitioned pass's hashing constants.
const ADAPTIVE_NAIVE_MAX_ROWS: usize = 64;

/// How many leading rows [`SubsumptionAlgo::Adaptive`] samples to
/// estimate the partition shape (distinct null-mask density).
const ADAPTIVE_SAMPLE_ROWS: usize = 128;

/// Below this row count the partitioned algorithm stays on the calling
/// thread — fan-out overhead would exceed the probe work.
const PARTITIONED_PARALLEL_MIN_ROWS: usize = 256;

/// Does `t1` subsume `t2`? Both rows must have the same arity.
#[must_use]
pub fn subsumes(t1: &[Value], t2: &[Value]) -> bool {
    debug_assert_eq!(t1.len(), t2.len());
    t1.iter().zip(t2).all(|(a, b)| b.is_null() || a == b)
}

/// Does `t1` strictly subsume `t2`?
#[must_use]
pub fn strictly_subsumes(t1: &[Value], t2: &[Value]) -> bool {
    t1 != t2 && subsumes(t1, t2)
}

/// Remove strictly subsumed rows (and exact duplicates) from `table`,
/// preserving first-occurrence order of the survivors.
///
/// [`SubsumptionAlgo::Adaptive`] resolves to one of the two base
/// algorithms per call:
///
/// * ≤ `ADAPTIVE_NAIVE_MAX_ROWS` rows → naive (the quadratic scan's
///   constant factors beat partitioning on small inputs);
/// * a leading-row sample whose null-masks are almost all distinct →
///   naive (near-unique masks mean tiny partitions, so the partitioned
///   pass degenerates into a mask-pair scan with hashing overhead);
/// * otherwise → partitioned.
///
/// Every adaptive dispatch increments `subsumption.adaptive_choices`.
pub fn remove_subsumed(table: &mut Table, algo: SubsumptionAlgo) {
    match algo {
        SubsumptionAlgo::Naive => remove_subsumed_naive(table),
        SubsumptionAlgo::Partitioned => remove_subsumed_partitioned(table),
        SubsumptionAlgo::Adaptive => {
            metrics::incr(Counter::SubsumptionAdaptiveChoices);
            if pick_naive(table) {
                remove_subsumed_naive(table);
            } else {
                remove_subsumed_partitioned(table);
            }
        }
    }
}

/// The [`SubsumptionAlgo::Adaptive`] decision: `true` → naive.
fn pick_naive(table: &Table) -> bool {
    let n = table.len();
    if n <= ADAPTIVE_NAIVE_MAX_ROWS {
        return true;
    }
    // Partition shape from a leading sample: count distinct null-masks.
    let sample = n.min(ADAPTIVE_SAMPLE_ROWS);
    let arity = table.scheme().arity();
    let mut masks: HashSet<Bitset> = HashSet::with_capacity(sample);
    for row in &table.rows()[..sample] {
        masks.insert(null_mask(row, arity));
    }
    // Near-unique masks → partitions of ~1 row each; the partitioned
    // algorithm would pay a quadratic mask-pair scan plus hashing for no
    // pruning, so fall back to the straight quadratic row scan.
    masks.len() * 2 > sample
}

fn null_mask(row: &[Value], arity: usize) -> Bitset {
    let mut mask = Bitset::new(arity);
    for (k, v) in row.iter().enumerate() {
        if !v.is_null() {
            mask.set(k);
        }
    }
    mask
}

/// Reference implementation: pairwise `O(n²)` scan.
pub fn remove_subsumed_naive(table: &mut Table) {
    let _span = clio_obs::span("ops.remove_subsumed");
    table.dedup();
    let rows = table.rows();
    let n = rows.len();
    let mut keep = vec![true; n];
    let mut comparisons: u64 = 0;
    for i in 0..n {
        for j in 0..n {
            if i != j && keep[i] {
                comparisons += 1;
                if strictly_subsumes(&rows[j], &rows[i]) {
                    keep[i] = false;
                    break;
                }
            }
        }
    }
    let removed = keep.iter().filter(|k| !**k).count() as u64;
    metrics::add(Counter::SubsumptionComparisons, comparisons);
    metrics::add(Counter::TuplesSubsumed, removed);
    retain_by_mask(table, &keep);
}

/// Optimized implementation: group rows by non-null mask; for each strict
/// mask-subset pair `(m_small, m_big)`, probe a hash index of the big
/// group's rows projected onto `m_small`'s positions.
///
/// The per-mask passes only read the shared row/group structures and
/// only ever remove rows of their own partition, so they are
/// independent; tables of at least `PARTITIONED_PARALLEL_MIN_ROWS`
/// rows run them on the [`exec`] pool (`subsumption.worker` spans). The
/// survivors — and the flushed counters, which sum the same per-mask
/// totals in any schedule — are identical to the serial pass.
pub fn remove_subsumed_partitioned(table: &mut Table) {
    let _span = clio_obs::span("ops.remove_subsumed");
    table.dedup();
    let arity = table.scheme().arity();
    let rows = table.rows();
    let n = rows.len();

    // group row indexes by non-null mask
    let mut groups: HashMap<Bitset, Vec<usize>> = HashMap::new();
    for (i, row) in rows.iter().enumerate() {
        groups.entry(null_mask(row, arity)).or_default().push(i);
    }

    if groups.len() <= 1 {
        // one partition ⇒ no strict mask-subset pairs ⇒ nothing beyond
        // the dedup above can be removed
        metrics::add(Counter::TuplesSubsumed, 0);
        return;
    }

    let masks: Vec<&Bitset> = groups.keys().collect();

    // One pass per subsumee mask: probe a hash index of the projections
    // of every strictly-larger group, returning this partition's doomed
    // row indexes plus its work count (index insertions + probes — the
    // role the pairwise tests play in the naive algorithm).
    let probe_mask = |_i: usize, small: &&Bitset| -> (Vec<usize>, u64) {
        let mut comparisons: u64 = 0;
        let positions: Vec<usize> = small.iter_ones().collect();
        let mut projections: HashMap<Vec<&Value>, ()> = HashMap::new();
        for big in &masks {
            if small.is_strict_subset(big) {
                for &ri in &groups[*big] {
                    let proj: Vec<&Value> = positions.iter().map(|&p| &rows[ri][p]).collect();
                    comparisons += 1;
                    projections.insert(proj, ());
                }
            }
        }
        let mut doomed = Vec::new();
        if !projections.is_empty() {
            for &ri in &groups[*small] {
                let proj: Vec<&Value> = positions.iter().map(|&p| &rows[ri][p]).collect();
                comparisons += 1;
                if projections.contains_key(&proj) {
                    doomed.push(ri);
                }
            }
        }
        (doomed, comparisons)
    };

    let results: Vec<(Vec<usize>, u64)> = if n >= PARTITIONED_PARALLEL_MIN_ROWS {
        exec::map_slice(&masks, "subsumption.worker", probe_mask)
    } else {
        masks
            .iter()
            .enumerate()
            .map(|(i, m)| probe_mask(i, m))
            .collect()
    };

    let mut keep = vec![true; n];
    let mut comparisons: u64 = 0;
    let mut removed: u64 = 0;
    for (doomed, work) in results {
        comparisons += work;
        removed += doomed.len() as u64;
        for ri in doomed {
            keep[ri] = false;
        }
    }
    metrics::add(Counter::SubsumptionComparisons, comparisons);
    metrics::add(Counter::TuplesSubsumed, removed);
    retain_by_mask(table, &keep);
}

fn retain_by_mask(table: &mut Table, keep: &[bool]) {
    let mut i = 0;
    table.rows_mut().retain(|_| {
        let k = keep[i];
        i += 1;
        k
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, Scheme};
    use crate::value::DataType;

    fn scheme(n: usize) -> Scheme {
        Scheme::new(
            (0..n)
                .map(|i| Column::new("R", format!("a{i}"), DataType::Str))
                .collect(),
        )
    }

    fn v(s: &str) -> Value {
        if s == "-" {
            Value::Null
        } else {
            Value::str(s)
        }
    }

    fn table(rows: &[&[&str]]) -> Table {
        let arity = rows.first().map_or(0, |r| r.len());
        Table::new(
            scheme(arity),
            rows.iter()
                .map(|r| r.iter().map(|s| v(s)).collect())
                .collect(),
        )
    }

    #[test]
    fn subsumes_basic() {
        assert!(subsumes(&[v("a"), v("b")], &[v("a"), v("-")]));
        assert!(!subsumes(&[v("a"), v("b")], &[v("x"), v("-")]));
        assert!(subsumes(&[v("a"), v("-")], &[v("a"), v("-")]));
        assert!(!strictly_subsumes(&[v("a"), v("-")], &[v("a"), v("-")]));
        assert!(strictly_subsumes(&[v("a"), v("b")], &[v("a"), v("-")]));
        // subsumption is one-directional
        assert!(!subsumes(&[v("a"), v("-")], &[v("a"), v("b")]));
    }

    #[test]
    fn paper_figure7_u_subsumed_by_v() {
        // u = Children+Parents association padded with nulls on PhoneDir,
        // v = the full association; v strictly subsumes u.
        let u = [v("002"), v("Maya"), v("202"), v("-"), v("-")];
        let w = [v("002"), v("Maya"), v("202"), v("202"), v("555")];
        assert!(strictly_subsumes(&w, &u));
    }

    #[test]
    fn removal_keeps_maximal_rows() {
        for algo in [
            SubsumptionAlgo::Naive,
            SubsumptionAlgo::Partitioned,
            SubsumptionAlgo::Adaptive,
        ] {
            let mut t = table(&[
                &["a", "b", "-"],
                &["a", "b", "c"],
                &["x", "-", "-"],
                &["-", "-", "z"],
            ]);
            remove_subsumed(&mut t, algo);
            assert_eq!(t.len(), 3, "{algo:?}");
            assert!(t.rows().iter().all(|r| r[0] != v("a") || !r[2].is_null()));
        }
    }

    #[test]
    fn exact_duplicates_are_collapsed() {
        for algo in [
            SubsumptionAlgo::Naive,
            SubsumptionAlgo::Partitioned,
            SubsumptionAlgo::Adaptive,
        ] {
            let mut t = table(&[&["a", "b"], &["a", "b"], &["c", "-"]]);
            remove_subsumed(&mut t, algo);
            assert_eq!(t.len(), 2, "{algo:?}");
        }
    }

    #[test]
    fn incomparable_rows_all_survive() {
        for algo in [
            SubsumptionAlgo::Naive,
            SubsumptionAlgo::Partitioned,
            SubsumptionAlgo::Adaptive,
        ] {
            let mut t = table(&[&["a", "-"], &["-", "b"], &["c", "-"]]);
            remove_subsumed(&mut t, algo);
            assert_eq!(t.len(), 3, "{algo:?}");
        }
    }

    #[test]
    fn equal_masks_different_values_survive() {
        for algo in [
            SubsumptionAlgo::Naive,
            SubsumptionAlgo::Partitioned,
            SubsumptionAlgo::Adaptive,
        ] {
            let mut t = table(&[&["a", "-"], &["b", "-"]]);
            remove_subsumed(&mut t, algo);
            assert_eq!(t.len(), 2, "{algo:?}");
        }
    }

    #[test]
    fn chains_of_subsumption_leave_only_top() {
        for algo in [
            SubsumptionAlgo::Naive,
            SubsumptionAlgo::Partitioned,
            SubsumptionAlgo::Adaptive,
        ] {
            let mut t = table(&[&["a", "-", "-"], &["a", "b", "-"], &["a", "b", "c"]]);
            remove_subsumed(&mut t, algo);
            assert_eq!(t.len(), 1, "{algo:?}");
            assert_eq!(t.rows()[0][2], v("c"));
        }
    }

    #[test]
    fn order_of_survivors_is_preserved() {
        let mut t = table(&[&["z", "-"], &["a", "b"], &["z", "y"]]);
        remove_subsumed(&mut t, SubsumptionAlgo::Partitioned);
        assert_eq!(t.rows()[0][0], v("a"));
        assert_eq!(t.rows()[1][0], v("z"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn empty_table_is_fine() {
        for algo in [
            SubsumptionAlgo::Naive,
            SubsumptionAlgo::Partitioned,
            SubsumptionAlgo::Adaptive,
        ] {
            let mut t = table(&[]);
            remove_subsumed(&mut t, algo);
            assert!(t.is_empty());
        }
    }

    /// Deterministic pseudo-random nullable table (xorshift, no deps):
    /// small domain so subsumption pairs actually occur.
    fn random_table(rows: usize, arity: usize, seed: u64) -> Table {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let rows: Vec<Vec<Value>> = (0..rows)
            .map(|_| {
                (0..arity)
                    .map(|_| match next() % 5 {
                        0 => Value::Null,
                        v => Value::Int(v as i64),
                    })
                    .collect()
            })
            .collect();
        Table::new(scheme(arity), rows)
    }

    #[test]
    fn parallel_partitioned_is_byte_identical_to_serial() {
        // 1200 rows exceeds PARTITIONED_PARALLEL_MIN_ROWS, so the probe
        // passes fan out; survivors must match the serial pass exactly,
        // row order included.
        let base = random_table(1200, 6, 0xC110);
        let mut serial = base.clone();
        let mut parallel = base.clone();
        crate::exec::with_threads(1, || remove_subsumed_partitioned(&mut serial));
        crate::exec::with_threads(4, || remove_subsumed_partitioned(&mut parallel));
        assert!(serial.len() < base.len(), "workload must exercise removal");
        assert_eq!(serial.rows(), parallel.rows());
    }

    #[test]
    fn adaptive_picks_naive_on_small_and_partitioned_on_large() {
        // small: under the row floor
        assert!(super::pick_naive(&random_table(
            ADAPTIVE_NAIVE_MAX_ROWS,
            4,
            1
        )));
        // large with few distinct masks (arity 4, domain {null,1..4}):
        // the sample repeats masks, so partitioning pays off
        assert!(!super::pick_naive(&random_table(1000, 4, 2)));
        // large but every sampled row has a distinct mask → naive
        let wide = Table::new(
            scheme(12),
            (0..200u32)
                .map(|i| {
                    (0..12)
                        .map(|k| {
                            if (i >> k) & 1 == 0 {
                                Value::Null
                            } else {
                                Value::Int(1)
                            }
                        })
                        .collect()
                })
                .collect(),
        );
        assert!(super::pick_naive(&wide));
    }

    #[test]
    fn adaptive_agrees_with_reference_on_random_tables() {
        for seed in [3u64, 17, 99] {
            let base = random_table(700, 5, seed);
            let mut reference = base.clone();
            let mut adaptive = base.clone();
            remove_subsumed_naive(&mut reference);
            remove_subsumed(&mut adaptive, SubsumptionAlgo::Adaptive);
            assert_eq!(reference.rows(), adaptive.rows(), "seed {seed}");
        }
    }
}
