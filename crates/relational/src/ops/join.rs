//! Joins: cartesian product, inner join, left outer join, full outer join.
//!
//! Inner joins compute the paper's *full data associations* of an edge;
//! outer joins implement the optimized full-disjunction plan for acyclic
//! query graphs and the `LEFT JOIN`s of generated mapping SQL.
//!
//! The implementation extracts equality conjuncts that span the two inputs
//! and uses a hash join on them; any residual predicate is evaluated on the
//! concatenated row. Null join-key values never match (SQL semantics — this
//! is exactly what makes join predicates *strong*).

use std::collections::HashMap;

use clio_obs::metrics::{self, Counter};

use crate::error::Result;
use crate::expr::{BinOp, Expr};
use crate::funcs::FuncRegistry;
use crate::schema::Scheme;
use crate::table::Table;
use crate::value::Value;

/// Join flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// Keep only matching pairs.
    Inner,
    /// Keep all left rows; pad right side with nulls when unmatched.
    LeftOuter,
    /// Keep all rows of both sides; pad the other side when unmatched.
    FullOuter,
}

/// Cartesian product (no predicate).
pub fn cartesian_product(left: &Table, right: &Table) -> Result<Table> {
    let scheme = left.scheme().concat(right.scheme())?;
    let mut out = Table::empty(scheme);
    for l in left.rows() {
        for r in right.rows() {
            let mut row = l.clone();
            row.extend(r.iter().cloned());
            out.push(row);
        }
    }
    metrics::add(Counter::TuplesScanned, (left.len() + right.len()) as u64);
    metrics::add(Counter::JoinOutputRows, out.len() as u64);
    Ok(out)
}

/// Join `left` and `right` on `pred` with the given flavour.
pub fn join(
    left: &Table,
    right: &Table,
    pred: &Expr,
    kind: JoinKind,
    funcs: &FuncRegistry,
) -> Result<Table> {
    let _span = clio_obs::span("ops.join");
    let scheme = left.scheme().concat(right.scheme())?;

    // Split the predicate into equi-conjuncts usable as hash keys and a
    // residual expression evaluated on the concatenated row.
    let conjuncts = flatten_conjuncts(pred);
    let mut left_keys: Vec<usize> = Vec::new();
    let mut right_keys: Vec<usize> = Vec::new();
    let mut residual: Vec<Expr> = Vec::new();
    for c in conjuncts {
        match equi_key(&c, left.scheme(), right.scheme()) {
            Some((l, r)) => {
                left_keys.push(l);
                right_keys.push(r);
            }
            None => residual.push(c.clone()),
        }
    }
    let residual = if residual.is_empty() {
        None
    } else {
        Some(Expr::conjunction(residual).bind(&scheme)?)
    };

    let left_arity = left.scheme().arity();
    let right_arity = right.scheme().arity();
    let mut out = Table::empty(scheme);
    let mut right_matched = vec![false; right.len()];
    // Work counters, accumulated locally and flushed once on return.
    let mut probes: u64 = 0;

    if left_keys.is_empty() {
        // Pure nested loop.
        let bound = pred.bind(out.scheme())?;
        for l in left.rows() {
            let mut matched = false;
            probes += right.len() as u64;
            for (ri, r) in right.rows().iter().enumerate() {
                let mut row = l.clone();
                row.extend(r.iter().cloned());
                if bound.eval_truth(&row, funcs)?.passes() {
                    matched = true;
                    right_matched[ri] = true;
                    out.push(row);
                }
            }
            if !matched && kind != JoinKind::Inner {
                let mut row = l.clone();
                row.extend(std::iter::repeat_n(Value::Null, right_arity));
                out.push(row);
            }
        }
    } else {
        // Hash join on the extracted keys.
        let mut index: HashMap<Vec<Value>, Vec<usize>> = HashMap::with_capacity(right.len());
        for (ri, r) in right.rows().iter().enumerate() {
            let key: Vec<Value> = right_keys.iter().map(|&i| r[i].clone()).collect();
            if key.iter().any(Value::is_null) {
                continue; // null keys never match
            }
            index.entry(key).or_default().push(ri);
        }
        for l in left.rows() {
            let key: Vec<Value> = left_keys.iter().map(|&i| l[i].clone()).collect();
            let mut matched = false;
            if !key.iter().any(Value::is_null) {
                probes += 1;
                if let Some(candidates) = index.get(&key) {
                    for &ri in candidates {
                        let r = &right.rows()[ri];
                        let mut row = l.clone();
                        row.extend(r.iter().cloned());
                        // container equality may admit pairs SQL equality
                        // would not (it never does for same-typed keys, but
                        // the residual check also enforces any extra
                        // predicate conjuncts)
                        let ok = match &residual {
                            None => true,
                            Some(b) => b.eval_truth(&row, funcs)?.passes(),
                        };
                        if ok {
                            matched = true;
                            right_matched[ri] = true;
                            out.push(row);
                        }
                    }
                }
            }
            if !matched && kind != JoinKind::Inner {
                let mut row = l.clone();
                row.extend(std::iter::repeat_n(Value::Null, right_arity));
                out.push(row);
            }
        }
    }

    if kind == JoinKind::FullOuter {
        for (ri, r) in right.rows().iter().enumerate() {
            if !right_matched[ri] {
                let mut row: Vec<Value> = std::iter::repeat_n(Value::Null, left_arity).collect();
                row.extend(r.iter().cloned());
                out.push(row);
            }
        }
    }

    metrics::add(Counter::TuplesScanned, (left.len() + right.len()) as u64);
    metrics::add(Counter::JoinProbes, probes);
    metrics::add(Counter::JoinOutputRows, out.len() as u64);
    Ok(out)
}

/// Flatten a conjunction tree into its conjuncts.
fn flatten_conjuncts(e: &Expr) -> Vec<Expr> {
    match e {
        Expr::Binary {
            op: BinOp::And,
            left,
            right,
        } => {
            let mut out = flatten_conjuncts(left);
            out.extend(flatten_conjuncts(right));
            out
        }
        other => vec![other.clone()],
    }
}

/// If `e` is `col_a = col_b` with one column per side, return the pair of
/// column indexes `(left_idx, right_idx)`.
fn equi_key(e: &Expr, left: &Scheme, right: &Scheme) -> Option<(usize, usize)> {
    if let Expr::Binary {
        op: BinOp::Eq,
        left: a,
        right: b,
    } = e
    {
        if let (Expr::Column(ca), Expr::Column(cb)) = (a.as_ref(), b.as_ref()) {
            if let (Ok(li), Ok(ri)) = (left.resolve(ca), right.resolve(cb)) {
                return Some((li, ri));
            }
            if let (Ok(li), Ok(ri)) = (left.resolve(cb), right.resolve(ca)) {
                return Some((li, ri));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;
    use crate::relation::RelationBuilder;
    use crate::value::DataType;

    fn children() -> Table {
        RelationBuilder::new("Children")
            .attr("ID", DataType::Str)
            .attr("mid", DataType::Str)
            .row(vec!["001".into(), "201".into()])
            .row(vec!["002".into(), "202".into()])
            .row(vec!["003".into(), Value::Null]) // motherless child
            .build()
            .unwrap()
            .to_table("C")
    }

    fn parents() -> Table {
        RelationBuilder::new("Parents")
            .attr("ID", DataType::Str)
            .attr("affiliation", DataType::Str)
            .row(vec!["201".into(), "IBM".into()])
            .row(vec!["202".into(), "UofT".into()])
            .row(vec!["205".into(), "MIT".into()]) // childless parent
            .build()
            .unwrap()
            .to_table("P")
    }

    fn funcs() -> FuncRegistry {
        FuncRegistry::with_builtins()
    }

    fn pred() -> Expr {
        parse_expr("C.mid = P.ID").unwrap()
    }

    #[test]
    fn inner_join_matches_pairs() {
        let out = join(&children(), &parents(), &pred(), JoinKind::Inner, &funcs()).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out.scheme().arity(), 4);
    }

    #[test]
    fn null_keys_never_match() {
        // even against another null on the other side
        let mut p = parents();
        p.push(vec![Value::Null, "X".into()]);
        let out = join(&children(), &p, &pred(), JoinKind::Inner, &funcs()).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn left_outer_pads_unmatched_left() {
        let out = join(
            &children(),
            &parents(),
            &pred(),
            JoinKind::LeftOuter,
            &funcs(),
        )
        .unwrap();
        assert_eq!(out.len(), 3);
        let unmatched: Vec<_> = out.rows().iter().filter(|r| r[2].is_null()).collect();
        assert_eq!(unmatched.len(), 1);
        assert_eq!(unmatched[0][0], Value::str("003"));
    }

    #[test]
    fn full_outer_pads_both_sides() {
        let out = join(
            &children(),
            &parents(),
            &pred(),
            JoinKind::FullOuter,
            &funcs(),
        )
        .unwrap();
        // 2 matches + motherless child + childless parent
        assert_eq!(out.len(), 4);
        let right_only: Vec<_> = out.rows().iter().filter(|r| r[0].is_null()).collect();
        assert_eq!(right_only.len(), 1);
        assert_eq!(right_only[0][3], Value::str("MIT"));
    }

    #[test]
    fn nested_loop_path_agrees_with_hash_path() {
        // force nested loop with a non-equi predicate that is equivalent
        let nl = parse_expr("C.mid >= P.ID AND C.mid <= P.ID").unwrap();
        let a = join(
            &children(),
            &parents(),
            &pred(),
            JoinKind::FullOuter,
            &funcs(),
        )
        .unwrap();
        let b = join(&children(), &parents(), &nl, JoinKind::FullOuter, &funcs()).unwrap();
        let mut ra = a.rows().to_vec();
        let mut rb = b.rows().to_vec();
        ra.sort_by(|x, y| format!("{x:?}").cmp(&format!("{y:?}")));
        rb.sort_by(|x, y| format!("{x:?}").cmp(&format!("{y:?}")));
        assert_eq!(ra, rb);
    }

    #[test]
    fn residual_conjuncts_filter_hash_matches() {
        let p = parse_expr("C.mid = P.ID AND P.affiliation = 'IBM'").unwrap();
        let out = join(&children(), &parents(), &p, JoinKind::Inner, &funcs()).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0][0], Value::str("001"));
    }

    #[test]
    fn cartesian_product_sizes() {
        let out = cartesian_product(&children(), &parents()).unwrap();
        assert_eq!(out.len(), 9);
        assert_eq!(out.scheme().arity(), 4);
    }

    #[test]
    fn empty_right_side_outer_join() {
        let empty = Table::empty(parents().scheme().clone());
        let out = join(&children(), &empty, &pred(), JoinKind::LeftOuter, &funcs()).unwrap();
        assert_eq!(out.len(), 3);
        assert!(out.rows().iter().all(|r| r[2].is_null()));
        let inner = join(&children(), &empty, &pred(), JoinKind::Inner, &funcs()).unwrap();
        assert!(inner.is_empty());
    }

    #[test]
    fn join_rejects_clashing_schemes() {
        assert!(join(&children(), &children(), &pred(), JoinKind::Inner, &funcs()).is_err());
    }

    #[test]
    fn swapped_equi_predicate_still_hash_joins() {
        let p = parse_expr("P.ID = C.mid").unwrap();
        let out = join(&children(), &parents(), &p, JoinKind::Inner, &funcs()).unwrap();
        assert_eq!(out.len(), 2);
    }
}
