//! CSV import/export for databases.
//!
//! A database serializes to a directory: one `<Relation>.csv` per
//! relation plus a `_schema.txt` manifest declaring attribute types,
//! `NOT NULL` markers, keys, and foreign keys. This is how real source
//! data gets into a mapping session (`clio-shell --source <dir>`).
//!
//! CSV conventions: RFC-4180-style quoting (`"` doubled inside quoted
//! fields); an *unquoted empty* field is SQL null, a *quoted empty*
//! field (`""`) is the empty string.

use std::fmt::Write as _;
use std::path::Path;

use crate::constraints::{ForeignKey, Key};
use crate::database::Database;
use crate::error::{Error, Result};
use crate::relation::Relation;
use crate::schema::{Attribute, RelSchema};
use crate::value::{DataType, Value};

/// Render one CSV field.
fn write_field(out: &mut String, v: &Value) {
    match v {
        Value::Null => {}
        Value::Str(s) => {
            if s.is_empty() || s.contains([',', '"', '\n', '\r']) {
                out.push('"');
                out.push_str(&s.replace('"', "\"\""));
                out.push('"');
            } else {
                out.push_str(s);
            }
        }
        other => {
            let _ = write!(out, "{other}");
        }
    }
}

/// Serialize a relation to CSV text (header row = attribute names).
#[must_use]
pub fn relation_to_csv(rel: &Relation) -> String {
    let mut out = String::new();
    let names: Vec<&str> = rel
        .schema()
        .attrs()
        .iter()
        .map(|a| a.name.as_str())
        .collect();
    out.push_str(&names.join(","));
    out.push('\n');
    for row in rel.rows() {
        for (i, v) in row.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_field(&mut out, v);
        }
        out.push('\n');
    }
    out
}

/// Split CSV text into records. Splitting must be quote-aware: the
/// writer quotes fields containing `\n`/`\r`, so a record boundary is a
/// `\n` (or `\r\n`) *outside* quotes only — a line-based split would
/// tear legally-written multi-line fields apart.
fn split_records(text: &str) -> Vec<&str> {
    let bytes = text.as_bytes();
    let mut records = Vec::new();
    let mut start = 0;
    let mut in_quotes = false;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'"' => in_quotes = !in_quotes,
            b'\n' if !in_quotes => {
                let mut end = i;
                if end > start && bytes[end - 1] == b'\r' {
                    end -= 1;
                }
                records.push(&text[start..end]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if start < bytes.len() {
        records.push(&text[start..]);
    }
    records
}

/// Split one CSV record into raw fields (`None` = unquoted empty = null).
fn parse_record(line: &str) -> Result<Vec<Option<String>>> {
    let mut fields: Vec<Option<String>> = Vec::new();
    let chars: Vec<char> = line.chars().collect();
    let mut i = 0;
    loop {
        if i >= chars.len() {
            fields.push(None); // trailing empty field
            break;
        }
        if chars[i] == '"' {
            // quoted field
            let mut s = String::new();
            i += 1;
            loop {
                match chars.get(i) {
                    None => return Err(Error::Invalid("unterminated quoted CSV field".into())),
                    Some('"') if chars.get(i + 1) == Some(&'"') => {
                        s.push('"');
                        i += 2;
                    }
                    Some('"') => {
                        i += 1;
                        break;
                    }
                    Some(c) => {
                        s.push(*c);
                        i += 1;
                    }
                }
            }
            fields.push(Some(s));
            match chars.get(i) {
                None => break,
                Some(',') => i += 1,
                Some(c) => {
                    return Err(Error::Invalid(format!(
                        "unexpected `{c}` after quoted field"
                    )))
                }
            }
        } else {
            let start = i;
            while i < chars.len() && chars[i] != ',' {
                i += 1;
            }
            let raw: String = chars[start..i].iter().collect();
            fields.push(if raw.is_empty() { None } else { Some(raw) });
            if i < chars.len() {
                i += 1; // skip comma
            } else {
                break;
            }
        }
    }
    Ok(fields)
}

fn parse_value(raw: Option<String>, ty: DataType) -> Result<Value> {
    let Some(s) = raw else {
        return Ok(Value::Null);
    };
    Ok(match ty {
        DataType::Str => Value::Str(s),
        DataType::Int => Value::Int(
            s.trim()
                .parse()
                .map_err(|_| Error::Invalid(format!("invalid int `{s}` in CSV")))?,
        ),
        DataType::Float => Value::Float(
            s.trim()
                .parse()
                .map_err(|_| Error::Invalid(format!("invalid float `{s}` in CSV")))?,
        ),
        DataType::Bool => match s.trim() {
            "true" | "TRUE" | "1" => Value::Bool(true),
            "false" | "FALSE" | "0" => Value::Bool(false),
            other => return Err(Error::Invalid(format!("invalid bool `{other}` in CSV"))),
        },
    })
}

/// Parse CSV text into a relation under the given schema. The header row
/// must match the schema's attribute names in order.
pub fn relation_from_csv(schema: RelSchema, text: &str) -> Result<Relation> {
    let mut records = split_records(text).into_iter();
    let header = records
        .next()
        .ok_or_else(|| Error::Invalid("empty CSV: missing header".into()))?;
    let expected: Vec<&str> = schema.attrs().iter().map(|a| a.name.as_str()).collect();
    let got: Vec<&str> = header.split(',').collect();
    if got != expected {
        return Err(Error::Invalid(format!(
            "CSV header {got:?} does not match schema attributes {expected:?}"
        )));
    }
    let mut rel = Relation::empty(schema);
    for record in records {
        if record.is_empty() {
            continue;
        }
        let fields = parse_record(record)?;
        if fields.len() != rel.schema().arity() {
            return Err(Error::ArityMismatch {
                expected: rel.schema().arity(),
                got: fields.len(),
            });
        }
        let row: Vec<Value> = fields
            .into_iter()
            .zip(rel.schema().attrs().to_vec())
            .map(|(f, a)| parse_value(f, a.ty))
            .collect::<Result<_>>()?;
        rel.insert(row)?;
    }
    Ok(rel)
}

/// The `_schema.txt` manifest for a database.
#[must_use]
pub fn schema_manifest(db: &Database) -> String {
    let mut out = String::new();
    for rel in db.relations() {
        let _ = write!(out, "relation {} (", rel.name());
        for (i, a) in rel.schema().attrs().iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{} {}", a.name, a.ty);
            if a.not_null {
                out.push_str(" not null");
            }
        }
        out.push_str(")\n");
    }
    for k in &db.constraints.keys {
        let _ = writeln!(out, "key {} ({})", k.relation, k.attrs.join(", "));
    }
    for fk in &db.constraints.foreign_keys {
        let _ = writeln!(
            out,
            "fk {} ({}) -> {} ({})",
            fk.from_relation,
            fk.from_attrs.join(", "),
            fk.to_relation,
            fk.to_attrs.join(", ")
        );
    }
    out
}

fn parse_type(s: &str) -> Result<DataType> {
    match s {
        "int" => Ok(DataType::Int),
        "float" => Ok(DataType::Float),
        "str" => Ok(DataType::Str),
        "bool" => Ok(DataType::Bool),
        other => Err(Error::Invalid(format!(
            "unknown type `{other}` in schema manifest"
        ))),
    }
}

fn parse_name_list(s: &str) -> Vec<String> {
    s.split(',')
        .map(|x| x.trim().to_owned())
        .filter(|x| !x.is_empty())
        .collect()
}

/// Parse a `_schema.txt` manifest into schemas + constraints (relations
/// come back empty; data loads from the CSVs).
pub fn parse_manifest(text: &str) -> Result<(Vec<RelSchema>, Vec<Key>, Vec<ForeignKey>)> {
    let mut schemas = Vec::new();
    let mut keys = Vec::new();
    let mut fks = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err =
            |msg: String| Error::Invalid(format!("schema manifest line {}: {msg}", lineno + 1));
        if let Some(rest) = line.strip_prefix("relation ") {
            let (name, attrs_part) = rest
                .split_once('(')
                .ok_or_else(|| err("relation line needs `(attrs)`".into()))?;
            let attrs_part = attrs_part
                .strip_suffix(')')
                .ok_or_else(|| err("relation line missing `)`".into()))?;
            let mut attrs = Vec::new();
            for spec in attrs_part.split(',') {
                let spec = spec.trim();
                if spec.is_empty() {
                    continue;
                }
                let mut words = spec.split_whitespace();
                let aname = words
                    .next()
                    .ok_or_else(|| err("empty attribute spec".into()))?;
                let ty = parse_type(
                    words
                        .next()
                        .ok_or_else(|| err(format!("attribute `{aname}` missing type")))?,
                )?;
                let rest: Vec<&str> = words.collect();
                let not_null = rest == ["not", "null"];
                if !not_null && !rest.is_empty() {
                    return Err(err(format!("unexpected modifier `{}`", rest.join(" "))));
                }
                attrs.push(if not_null {
                    Attribute::not_null(aname, ty)
                } else {
                    Attribute::new(aname, ty)
                });
            }
            schemas.push(RelSchema::new(name.trim(), attrs)?);
        } else if let Some(rest) = line.strip_prefix("key ") {
            let (rel, attrs) = rest
                .split_once('(')
                .ok_or_else(|| err("key line needs `(attrs)`".into()))?;
            let attrs = attrs
                .strip_suffix(')')
                .ok_or_else(|| err("key line missing `)`".into()))?;
            keys.push(Key {
                relation: rel.trim().to_owned(),
                attrs: parse_name_list(attrs),
            });
        } else if let Some(rest) = line.strip_prefix("fk ") {
            let (from, to) = rest
                .split_once("->")
                .ok_or_else(|| err("fk line needs `->`".into()))?;
            let parse_side = |side: &str| -> Result<(String, Vec<String>)> {
                let (rel, attrs) = side
                    .split_once('(')
                    .ok_or_else(|| err("fk side needs `(attrs)`".into()))?;
                let attrs = attrs
                    .trim()
                    .strip_suffix(')')
                    .ok_or_else(|| err("fk side missing `)`".into()))?;
                Ok((rel.trim().to_owned(), parse_name_list(attrs)))
            };
            let (from_relation, from_attrs) = parse_side(from)?;
            let (to_relation, to_attrs) = parse_side(to)?;
            fks.push(ForeignKey {
                from_relation,
                from_attrs,
                to_relation,
                to_attrs,
            });
        } else {
            return Err(err(format!("unknown directive in `{line}`")));
        }
    }
    Ok((schemas, keys, fks))
}

/// Write a database to `dir` (created if missing): `_schema.txt` plus one
/// CSV per relation.
pub fn write_database(db: &Database, dir: &Path) -> Result<()> {
    let io_err = |e: std::io::Error| Error::Invalid(format!("csv export: {e}"));
    std::fs::create_dir_all(dir).map_err(io_err)?;
    std::fs::write(dir.join("_schema.txt"), schema_manifest(db)).map_err(io_err)?;
    for rel in db.relations() {
        std::fs::write(
            dir.join(format!("{}.csv", rel.name())),
            relation_to_csv(rel),
        )
        .map_err(io_err)?;
    }
    Ok(())
}

/// Load a database from a directory written by [`write_database`] (or
/// hand-authored in the same layout).
pub fn read_database(dir: &Path) -> Result<Database> {
    let io_err = |e: std::io::Error| Error::Invalid(format!("csv import: {e}"));
    let manifest = std::fs::read_to_string(dir.join("_schema.txt")).map_err(io_err)?;
    let (schemas, keys, fks) = parse_manifest(&manifest)?;
    let mut db = Database::new();
    for schema in schemas {
        let name = schema.name().to_owned();
        let csv = std::fs::read_to_string(dir.join(format!("{name}.csv"))).map_err(io_err)?;
        db.add_relation(relation_from_csv(schema, &csv)?)?;
    }
    db.constraints.keys = keys;
    db.constraints.foreign_keys = fks;
    db.check_constraints()?;
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::RelationBuilder;

    fn tricky_relation() -> Relation {
        RelationBuilder::new("Tricky")
            .attr_not_null("id", DataType::Int)
            .attr("text", DataType::Str)
            .attr("score", DataType::Float)
            .attr("flag", DataType::Bool)
            .row(vec![
                1i64.into(),
                "plain".into(),
                1.5f64.into(),
                true.into(),
            ])
            .row(vec![
                2i64.into(),
                "comma, inside".into(),
                Value::Null,
                false.into(),
            ])
            .row(vec![
                3i64.into(),
                "quote \" here".into(),
                (-0.25f64).into(),
                Value::Null,
            ])
            .row(vec![4i64.into(), "".into(), 0f64.into(), true.into()]) // empty string != null
            .row(vec![5i64.into(), Value::Null, 2f64.into(), false.into()])
            .build()
            .unwrap()
    }

    #[test]
    fn relation_round_trips_through_csv() {
        let rel = tricky_relation();
        let csv = relation_to_csv(&rel);
        let back = relation_from_csv(rel.schema().clone(), &csv).unwrap();
        assert_eq!(back.rows(), rel.rows());
    }

    #[test]
    fn embedded_newlines_round_trip() {
        let rel = RelationBuilder::new("Multi")
            .attr_not_null("id", DataType::Int)
            .attr("text", DataType::Str)
            .row(vec![1i64.into(), "line one\nline two".into()])
            .row(vec![2i64.into(), "crlf\r\nhere".into()])
            .row(vec![3i64.into(), "both \"quoted\"\nand broken".into()])
            .row(vec![4i64.into(), "ends with cr\r".into()])
            .build()
            .unwrap();
        let csv = relation_to_csv(&rel);
        let back = relation_from_csv(rel.schema().clone(), &csv).unwrap();
        assert_eq!(back.rows(), rel.rows());
    }

    #[test]
    fn crlf_record_separators_are_accepted() {
        let schema = RelSchema::new(
            "R",
            vec![
                Attribute::not_null("n", DataType::Int),
                Attribute::new("s", DataType::Str),
            ],
        )
        .unwrap();
        // Hand-written file with CRLF record separators and a quoted
        // field spanning records; `""` is a doubled quote inside it.
        let text = "n,s\r\n1,a\r\n2,\"x\r\ny \"\" z\"\r\n";
        let rel = relation_from_csv(schema, text).unwrap();
        assert_eq!(rel.rows()[0][1], Value::str("a"));
        assert_eq!(rel.rows()[1][1], Value::str("x\r\ny \" z"));
    }

    #[test]
    fn null_and_empty_string_are_distinguished() {
        let rel = tricky_relation();
        let csv = relation_to_csv(&rel);
        let back = relation_from_csv(rel.schema().clone(), &csv).unwrap();
        assert_eq!(back.rows()[3][1], Value::str(""));
        assert!(back.rows()[4][1].is_null());
    }

    #[test]
    fn header_mismatch_rejected() {
        let rel = tricky_relation();
        let schema =
            RelSchema::new("Tricky", vec![Attribute::new("wrong", DataType::Int)]).unwrap();
        assert!(relation_from_csv(schema, &relation_to_csv(&rel)).is_err());
    }

    #[test]
    fn bad_values_are_reported() {
        let schema = RelSchema::new("R", vec![Attribute::new("n", DataType::Int)]).unwrap();
        assert!(relation_from_csv(schema.clone(), "n\nxyz\n").is_err());
        assert!(relation_from_csv(schema.clone(), "n\n\"unterminated\n").is_err());
        let schema_b = RelSchema::new("R", vec![Attribute::new("b", DataType::Bool)]).unwrap();
        assert!(relation_from_csv(schema_b, "b\nmaybe\n").is_err());
        // arity mismatch
        assert!(relation_from_csv(schema, "n\n1,2\n").is_err());
    }

    #[test]
    fn manifest_round_trips() {
        let mut db = Database::new();
        db.add_relation(tricky_relation()).unwrap();
        db.constraints.keys.push(Key::new("Tricky", vec!["id"]));
        let manifest = schema_manifest(&db);
        let (schemas, keys, fks) = parse_manifest(&manifest).unwrap();
        assert_eq!(schemas.len(), 1);
        assert_eq!(schemas[0], *db.relation("Tricky").unwrap().schema());
        assert_eq!(keys.len(), 1);
        assert!(fks.is_empty());
    }

    #[test]
    fn database_round_trips_through_directory() {
        let mut db = Database::new();
        db.add_relation(tricky_relation()).unwrap();
        db.add_relation(
            RelationBuilder::new("Other")
                .attr_not_null("k", DataType::Str)
                .row(vec!["1".into()])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.constraints.keys.push(Key::new("Tricky", vec!["id"]));
        let dir = std::env::temp_dir().join(format!("clio_csv_test_{}", std::process::id()));
        write_database(&db, &dir).unwrap();
        let back = read_database(&dir).unwrap();
        assert_eq!(back, db);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn constraint_violations_fail_the_load() {
        let dir = std::env::temp_dir().join(format!("clio_csv_bad_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("_schema.txt"),
            "relation R (id int not null)\nkey R (id)\n",
        )
        .unwrap();
        std::fs::write(dir.join("R.csv"), "id\n1\n1\n").unwrap();
        // duplicate key value -> constraint check fails... but relations
        // are sets, so exact duplicates collapse; use distinct rows that
        // collide on the declared key after adding a second attribute
        std::fs::write(
            dir.join("_schema.txt"),
            "relation R (id int not null, x str)\nkey R (id)\n",
        )
        .unwrap();
        std::fs::write(dir.join("R.csv"), "id,x\n1,a\n1,b\n").unwrap();
        assert!(read_database(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_parse_errors_are_located() {
        assert!(parse_manifest("relation R id int").is_err());
        assert!(parse_manifest("relation R (id frobs)").is_err());
        assert!(parse_manifest("nonsense").is_err());
        assert!(parse_manifest("fk A (x) B (y)").is_err());
        // comments and blanks are fine
        parse_manifest("# comment\n\nrelation R (id int)\n").unwrap();
    }
}
