//! Error type shared by the relational engine.

use std::fmt;

/// Errors produced by schema resolution, expression evaluation, and
/// relational operators.
///
/// The engine is strict: referencing an unknown column or applying an
/// operator to incompatible types is an error rather than a silent `NULL`,
/// so mapping bugs surface early.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // struct-variant fields are self-describing
pub enum Error {
    /// A column reference did not resolve against the scheme in scope.
    UnknownColumn(String),
    /// A column reference matched more than one column (missing qualifier).
    AmbiguousColumn(String),
    /// A relation name did not resolve against the database.
    UnknownRelation(String),
    /// A relation with this name already exists in the database.
    DuplicateRelation(String),
    /// A replacement relation's scheme is incompatible with the original.
    SchemeMismatch { relation: String, detail: String },
    /// An attribute name appears twice in one relation scheme.
    DuplicateAttribute { relation: String, attribute: String },
    /// A scalar function name did not resolve against the registry.
    UnknownFunction(String),
    /// A scalar function was called with the wrong number of arguments.
    FunctionArity {
        name: String,
        expected: usize,
        got: usize,
    },
    /// An operator or function was applied to values of unsupported types.
    TypeMismatch(String),
    /// A tuple's width does not match its relation scheme.
    ArityMismatch { expected: usize, got: usize },
    /// A `NOT NULL` attribute received a null value.
    NullViolation { relation: String, attribute: String },
    /// A key constraint was violated on insert.
    KeyViolation { relation: String, key: String },
    /// Text failed to parse as an expression; carries the character
    /// offset, the 1-based line/column, the offending token's text
    /// (empty at end of input), and a message.
    Parse {
        pos: usize,
        line: usize,
        column: usize,
        token: String,
        message: String,
    },
    /// Division by zero (or modulo by zero) during evaluation.
    DivisionByZero,
    /// Anything else worth reporting with a message.
    Invalid(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownColumn(c) => write!(f, "unknown column `{c}`"),
            Error::AmbiguousColumn(c) => write!(f, "ambiguous column `{c}`"),
            Error::UnknownRelation(r) => write!(f, "unknown relation `{r}`"),
            Error::DuplicateRelation(r) => write!(f, "relation `{r}` already exists"),
            Error::SchemeMismatch { relation, detail } => {
                write!(f, "cannot replace relation `{relation}`: {detail}")
            }
            Error::DuplicateAttribute {
                relation,
                attribute,
            } => {
                write!(
                    f,
                    "duplicate attribute `{attribute}` in relation `{relation}`"
                )
            }
            Error::UnknownFunction(n) => write!(f, "unknown function `{n}`"),
            Error::FunctionArity {
                name,
                expected,
                got,
            } => {
                write!(
                    f,
                    "function `{name}` expects {expected} argument(s), got {got}"
                )
            }
            Error::TypeMismatch(m) => write!(f, "type mismatch: {m}"),
            Error::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "tuple arity mismatch: expected {expected} values, got {got}"
                )
            }
            Error::NullViolation {
                relation,
                attribute,
            } => {
                write!(
                    f,
                    "null value in NOT NULL attribute `{relation}.{attribute}`"
                )
            }
            Error::KeyViolation { relation, key } => {
                write!(f, "key violation on `{relation}` (key {key})")
            }
            Error::Parse {
                line,
                column,
                token,
                message,
                ..
            } => {
                write!(f, "parse error at line {line}, column {column}: {message}")?;
                if !token.is_empty() {
                    write!(f, " (near `{token}`)")?;
                }
                Ok(())
            }
            Error::DivisionByZero => write!(f, "division by zero"),
            Error::Invalid(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience result alias used throughout the engine.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_human_readable() {
        let cases: Vec<(Error, &str)> = vec![
            (
                Error::UnknownColumn("C.age".into()),
                "unknown column `C.age`",
            ),
            (Error::AmbiguousColumn("ID".into()), "ambiguous column `ID`"),
            (
                Error::UnknownRelation("Kids".into()),
                "unknown relation `Kids`",
            ),
            (
                Error::DuplicateRelation("Kids".into()),
                "relation `Kids` already exists",
            ),
            (
                Error::SchemeMismatch {
                    relation: "Kids".into(),
                    detail: "arity changed from 2 to 3".into(),
                },
                "cannot replace relation `Kids`: arity changed from 2 to 3",
            ),
            (Error::DivisionByZero, "division by zero"),
        ];
        for (err, expect) in cases {
            assert_eq!(err.to_string(), expect);
        }
    }

    #[test]
    fn parse_error_carries_position() {
        let e = Error::Parse {
            pos: 7,
            line: 1,
            column: 8,
            token: ",".into(),
            message: "expected `)`".into(),
        };
        assert_eq!(
            e.to_string(),
            "parse error at line 1, column 8: expected `)` (near `,`)"
        );
        let e = Error::Parse {
            pos: 7,
            line: 2,
            column: 3,
            token: String::new(),
            message: "unexpected end of input".into(),
        };
        assert_eq!(
            e.to_string(),
            "parse error at line 2, column 3: unexpected end of input"
        );
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&Error::DivisionByZero);
    }
}
