//! Stored relations: a [`RelSchema`] plus a set of tuples.
//!
//! Following the paper's preliminaries, a relation is a *named, finite set
//! of tuples*; we additionally enforce the paper's standing assumption that
//! no stored tuple is null on **all** attributes ("the relations in the
//! source database do not contain any tuples that are null on all
//! attributes").

use std::fmt;

use crate::error::{Error, Result};
use crate::schema::{Attribute, RelSchema, Scheme};
use crate::table::Table;
use crate::value::{DataType, Value};

/// A stored relation.
#[derive(Debug, Clone, PartialEq)]
pub struct Relation {
    schema: RelSchema,
    rows: Vec<Vec<Value>>,
}

impl Relation {
    /// An empty relation with the given scheme.
    #[must_use]
    pub fn empty(schema: RelSchema) -> Relation {
        Relation {
            schema,
            rows: Vec::new(),
        }
    }

    /// Build a relation and insert all `rows`, validating each.
    pub fn with_rows(schema: RelSchema, rows: Vec<Vec<Value>>) -> Result<Relation> {
        let mut rel = Relation::empty(schema);
        for row in rows {
            rel.insert(row)?;
        }
        Ok(rel)
    }

    /// The relation scheme.
    #[must_use]
    pub fn schema(&self) -> &RelSchema {
        &self.schema
    }

    /// The relation name.
    #[must_use]
    pub fn name(&self) -> &str {
        self.schema.name()
    }

    /// The stored tuples, in insertion order.
    #[must_use]
    pub fn rows(&self) -> &[Vec<Value>] {
        &self.rows
    }

    /// Number of tuples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the relation empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Insert a tuple. Validates arity, types, `NOT NULL` attributes, the
    /// all-null prohibition, and set semantics (exact duplicates are
    /// silently ignored, as relations are sets).
    pub fn insert(&mut self, row: Vec<Value>) -> Result<()> {
        if row.len() != self.schema.arity() {
            return Err(Error::ArityMismatch {
                expected: self.schema.arity(),
                got: row.len(),
            });
        }
        if row.iter().all(Value::is_null) {
            return Err(Error::Invalid(format!(
                "all-null tuple rejected in relation `{}` (paper Sec 3 assumption)",
                self.name()
            )));
        }
        for (v, a) in row.iter().zip(self.schema.attrs()) {
            if v.is_null() && a.not_null {
                return Err(Error::NullViolation {
                    relation: self.name().to_owned(),
                    attribute: a.name.clone(),
                });
            }
            if !v.conforms_to(a.ty) {
                return Err(Error::TypeMismatch(format!(
                    "value `{v}` does not conform to {}.{}: {}",
                    self.name(),
                    a.name,
                    a.ty
                )));
            }
        }
        if !self.rows.contains(&row) {
            self.rows.push(row);
        }
        Ok(())
    }

    /// The value at `(row, attr)`.
    pub fn value(&self, row: usize, attr: &str) -> Result<&Value> {
        let idx = self.schema.index_of(attr)?;
        self.rows
            .get(row)
            .map(|r| &r[idx])
            .ok_or_else(|| Error::Invalid(format!("row {row} out of bounds in `{}`", self.name())))
    }

    /// All values of one attribute, in row order.
    pub fn column(&self, attr: &str) -> Result<Vec<&Value>> {
        let idx = self.schema.index_of(attr)?;
        Ok(self.rows.iter().map(|r| &r[idx]).collect())
    }

    /// Find rows where `attr == value` under SQL equality.
    pub fn rows_where(&self, attr: &str, value: &Value) -> Result<Vec<&Vec<Value>>> {
        let idx = self.schema.index_of(attr)?;
        Ok(self
            .rows
            .iter()
            .filter(|r| r[idx].sql_eq(value).passes())
            .collect())
    }

    /// Convert to a derived [`Table`] under the given alias.
    #[must_use]
    pub fn to_table(&self, alias: &str) -> Table {
        Table::new(Scheme::of_relation(&self.schema, alias), self.rows.clone())
    }

    /// A renamed copy (relation copies in mappings, e.g. `Parents2`).
    #[must_use]
    pub fn renamed(&self, new_name: &str) -> Relation {
        Relation {
            schema: self.schema.renamed(new_name),
            rows: self.rows.clone(),
        }
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_table(self.schema.name()))
    }
}

/// Fluent builder for relations in tests, examples, and the paper dataset.
///
/// ```
/// use clio_relational::relation::RelationBuilder;
/// use clio_relational::value::DataType;
///
/// let rel = RelationBuilder::new("Children")
///     .attr_not_null("ID", DataType::Str)
///     .attr("name", DataType::Str)
///     .attr("age", DataType::Int)
///     .row(vec!["001".into(), "Anna".into(), 6i64.into()])
///     .row(vec!["002".into(), "Maya".into(), 4i64.into()])
///     .build()
///     .unwrap();
/// assert_eq!(rel.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct RelationBuilder {
    name: String,
    attrs: Vec<Attribute>,
    rows: Vec<Vec<Value>>,
}

impl RelationBuilder {
    /// Start a builder for relation `name`.
    pub fn new(name: impl Into<String>) -> RelationBuilder {
        RelationBuilder {
            name: name.into(),
            attrs: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Add a nullable attribute.
    #[must_use]
    pub fn attr(mut self, name: impl Into<String>, ty: DataType) -> Self {
        self.attrs.push(Attribute::new(name, ty));
        self
    }

    /// Add a `NOT NULL` attribute.
    #[must_use]
    pub fn attr_not_null(mut self, name: impl Into<String>, ty: DataType) -> Self {
        self.attrs.push(Attribute::not_null(name, ty));
        self
    }

    /// Add a tuple (validated at [`RelationBuilder::build`]).
    #[must_use]
    pub fn row(mut self, row: Vec<Value>) -> Self {
        self.rows.push(row);
        self
    }

    /// Validate and build the relation.
    pub fn build(self) -> Result<Relation> {
        let schema = RelSchema::new(self.name, self.attrs)?;
        Relation::with_rows(schema, self.rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Relation {
        RelationBuilder::new("Children")
            .attr_not_null("ID", DataType::Str)
            .attr("name", DataType::Str)
            .attr("age", DataType::Int)
            .row(vec!["001".into(), "Anna".into(), 6i64.into()])
            .row(vec!["002".into(), "Maya".into(), 4i64.into()])
            .build()
            .unwrap()
    }

    #[test]
    fn build_and_read_back() {
        let rel = sample();
        assert_eq!(rel.name(), "Children");
        assert_eq!(rel.len(), 2);
        assert_eq!(rel.value(1, "name").unwrap(), &Value::str("Maya"));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut rel = sample();
        assert!(matches!(
            rel.insert(vec!["003".into(), "Ben".into()]),
            Err(Error::ArityMismatch {
                expected: 3,
                got: 2
            })
        ));
    }

    #[test]
    fn all_null_tuple_rejected() {
        let schema = RelSchema::new("R", vec![Attribute::new("a", DataType::Int)]).unwrap();
        let mut rel = Relation::empty(schema);
        assert!(rel.insert(vec![Value::Null]).is_err());
    }

    #[test]
    fn not_null_enforced() {
        let mut rel = sample();
        let err = rel
            .insert(vec![Value::Null, "Ben".into(), 5i64.into()])
            .unwrap_err();
        assert!(matches!(err, Error::NullViolation { .. }));
    }

    #[test]
    fn type_checked_on_insert() {
        let mut rel = sample();
        let err = rel
            .insert(vec!["003".into(), "Ben".into(), "five".into()])
            .unwrap_err();
        assert!(matches!(err, Error::TypeMismatch(_)));
    }

    #[test]
    fn null_allowed_in_nullable_attribute() {
        let mut rel = sample();
        rel.insert(vec!["003".into(), Value::Null, 5i64.into()])
            .unwrap();
        assert_eq!(rel.len(), 3);
        assert!(rel.value(2, "name").unwrap().is_null());
    }

    #[test]
    fn set_semantics_deduplicates() {
        let mut rel = sample();
        rel.insert(vec!["001".into(), "Anna".into(), 6i64.into()])
            .unwrap();
        assert_eq!(rel.len(), 2);
    }

    #[test]
    fn rows_where_uses_sql_equality() {
        let rel = sample();
        let hits = rel.rows_where("ID", &Value::str("002")).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0][1], Value::str("Maya"));
        // null probe matches nothing under SQL equality
        let misses = rel.rows_where("name", &Value::Null).unwrap();
        assert!(misses.is_empty());
    }

    #[test]
    fn column_extraction() {
        let rel = sample();
        let ages: Vec<_> = rel.column("age").unwrap();
        assert_eq!(ages, vec![&Value::Int(6), &Value::Int(4)]);
    }

    #[test]
    fn to_table_qualifies_by_alias() {
        let t = sample().to_table("C");
        assert_eq!(t.scheme().columns()[0].qualified_name(), "C.ID");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn renamed_copy_shares_rows() {
        let r2 = sample().renamed("Children2");
        assert_eq!(r2.name(), "Children2");
        assert_eq!(r2.len(), 2);
    }
}
