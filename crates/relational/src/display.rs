//! ASCII rendering of schemes and tables.
//!
//! The paper communicates everything through small data tables (Figures 1,
//! 2, 3, 4, 5, 8, 9). This module renders relations, derived tables, and
//! tagged data-association tables in that style so the `figures` binary can
//! regenerate each one.

use crate::schema::Scheme;
use crate::value::Value;

/// Render a table with qualified headers. `tags`, when non-empty, must have
/// one entry per row and is rendered as a trailing untitled column — the
/// paper uses this for coverage tags like `CPPh` and polarity marks.
#[must_use]
pub fn render_table(scheme: &Scheme, rows: &[Vec<Value>], tags: &[String]) -> String {
    let has_tags = !tags.is_empty();
    debug_assert!(!has_tags || tags.len() == rows.len());

    let mut headers: Vec<String> = scheme
        .columns()
        .iter()
        .map(|c| c.qualified_name())
        .collect();
    if has_tags {
        headers.push(String::new());
    }

    let mut grid: Vec<Vec<String>> = Vec::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        let mut cells: Vec<String> = row.iter().map(ToString::to_string).collect();
        if has_tags {
            cells.push(tags[i].clone());
        }
        grid.push(cells);
    }

    let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
    for row in &grid {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }

    let mut out = String::new();
    let rule = |out: &mut String| {
        out.push('+');
        for w in &widths {
            out.push_str(&"-".repeat(w + 2));
            out.push('+');
        }
        out.push('\n');
    };

    rule(&mut out);
    out.push('|');
    for (h, w) in headers.iter().zip(&widths) {
        out.push_str(&format!(" {h:<w$} |"));
    }
    out.push('\n');
    rule(&mut out);
    for row in &grid {
        out.push('|');
        for (cell, w) in row.iter().zip(&widths) {
            out.push_str(&format!(" {cell:<w$} |"));
        }
        out.push('\n');
    }
    rule(&mut out);
    out
}

/// Render with short headers grouped by qualifier, like the paper's figures
/// that title each relation block. Produces a one-line qualifier banner
/// followed by the standard grid with *unqualified* column names.
#[must_use]
pub fn render_table_grouped(scheme: &Scheme, rows: &[Vec<Value>], tags: &[String]) -> String {
    let mut banner = String::new();
    for q in scheme.qualifiers() {
        let n = scheme.indexes_of_qualifier(q).len();
        banner.push_str(&format!("[{q} x{n}] "));
    }
    let short = Scheme::new(
        scheme
            .columns()
            .iter()
            .map(|c| crate::schema::Column::new(c.qualifier.clone(), c.name.clone(), c.ty))
            .collect(),
    );
    format!("{banner}\n{}", render_table(&short, rows, tags))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::RelationBuilder;
    use crate::value::DataType;

    fn table() -> (Scheme, Vec<Vec<Value>>) {
        let rel = RelationBuilder::new("Children")
            .attr("ID", DataType::Str)
            .attr("age", DataType::Int)
            .row(vec!["002".into(), 4i64.into()])
            .row(vec!["009".into(), Value::Null])
            .build()
            .unwrap();
        let t = rel.to_table("C");
        (t.scheme().clone(), t.rows().to_vec())
    }

    #[test]
    fn renders_headers_rows_and_rules() {
        let (scheme, rows) = table();
        let s = render_table(&scheme, &rows, &[]);
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with('+'));
        assert!(lines[1].contains("C.ID"));
        assert!(lines[1].contains("C.age"));
        assert!(lines[3].contains("002"));
        assert!(lines[4].contains('-')); // null cell
        assert_eq!(lines.len(), 6); // rule, header, rule, 2 rows, rule
    }

    #[test]
    fn tags_render_as_trailing_column() {
        let (scheme, rows) = table();
        let s = render_table(&scheme, &rows, &["CPPh +".into(), "PPh -".into()]);
        assert!(s.contains("CPPh +"));
        assert!(s.contains("PPh -"));
    }

    #[test]
    fn column_widths_accommodate_long_cells() {
        let (scheme, mut rows) = table();
        rows.push(vec!["a-very-long-identifier".into(), 1i64.into()]);
        let s = render_table(&scheme, &rows, &[]);
        for line in s.lines().filter(|l| l.starts_with('|')) {
            assert_eq!(line.len(), s.lines().next().unwrap().len());
        }
    }

    #[test]
    fn grouped_rendering_has_banner() {
        let (scheme, rows) = table();
        let s = render_table_grouped(&scheme, &rows, &[]);
        assert!(s.starts_with("[C x2]"));
    }

    #[test]
    fn empty_table_renders_header_only() {
        let (scheme, _) = table();
        let s = render_table(&scheme, &[], &[]);
        assert!(s.contains("C.ID"));
        assert_eq!(s.lines().count(), 4);
    }
}
