//! SQL three-valued logic.
//!
//! Predicates over tuples containing nulls evaluate to one of three truth
//! values. Following SQL (and the paper's Section 3 preliminaries), a filter
//! keeps a tuple only when the predicate evaluates to [`Truth::True`]; both
//! `False` and `Unknown` reject it. This is what makes SQL join predicates
//! *strong* in the paper's sense.

/// A three-valued truth value: `True`, `False`, or `Unknown` (null).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Truth {
    /// Definitely true.
    True,
    /// Definitely false.
    False,
    /// Null was involved; truth cannot be determined.
    Unknown,
}

impl Truth {
    /// Kleene conjunction.
    #[must_use]
    pub fn and(self, other: Truth) -> Truth {
        use Truth::{False, True, Unknown};
        match (self, other) {
            (False, _) | (_, False) => False,
            (True, True) => True,
            _ => Unknown,
        }
    }

    /// Kleene disjunction.
    #[must_use]
    pub fn or(self, other: Truth) -> Truth {
        use Truth::{False, True, Unknown};
        match (self, other) {
            (True, _) | (_, True) => True,
            (False, False) => False,
            _ => Unknown,
        }
    }

    /// Kleene negation.
    #[must_use]
    #[allow(clippy::should_implement_trait)] // std::ops::Not is also implemented
    pub fn not(self) -> Truth {
        match self {
            Truth::True => Truth::False,
            Truth::False => Truth::True,
            Truth::Unknown => Truth::Unknown,
        }
    }

    /// SQL filter semantics: only `True` passes a `WHERE` clause.
    #[must_use]
    pub fn passes(self) -> bool {
        self == Truth::True
    }

    /// Lift a Boolean into three-valued logic.
    #[must_use]
    pub fn from_bool(b: bool) -> Truth {
        if b {
            Truth::True
        } else {
            Truth::False
        }
    }

    /// Convert to an optional Boolean (`Unknown` becomes `None`).
    #[must_use]
    pub fn to_option(self) -> Option<bool> {
        match self {
            Truth::True => Some(true),
            Truth::False => Some(false),
            Truth::Unknown => None,
        }
    }
}

impl std::ops::Not for Truth {
    type Output = Truth;

    fn not(self) -> Truth {
        Truth::not(self)
    }
}

impl From<bool> for Truth {
    fn from(b: bool) -> Self {
        Truth::from_bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::Truth::{self, False, True, Unknown};

    const ALL: [Truth; 3] = [True, False, Unknown];

    #[test]
    fn and_truth_table() {
        assert_eq!(True.and(True), True);
        assert_eq!(True.and(False), False);
        assert_eq!(True.and(Unknown), Unknown);
        assert_eq!(False.and(Unknown), False);
        assert_eq!(Unknown.and(Unknown), Unknown);
        assert_eq!(Unknown.and(False), False);
    }

    #[test]
    fn or_truth_table() {
        assert_eq!(False.or(False), False);
        assert_eq!(False.or(True), True);
        assert_eq!(Unknown.or(True), True);
        assert_eq!(Unknown.or(False), Unknown);
        assert_eq!(Unknown.or(Unknown), Unknown);
    }

    #[test]
    fn not_involution_on_definite_values() {
        assert_eq!(True.not(), False);
        assert_eq!(False.not(), True);
        assert_eq!(Unknown.not(), Unknown);
        for t in ALL {
            assert_eq!(t.not().not(), t);
        }
    }

    #[test]
    fn de_morgan_holds_in_kleene_logic() {
        for a in ALL {
            for b in ALL {
                assert_eq!(a.and(b).not(), a.not().or(b.not()));
                assert_eq!(a.or(b).not(), a.not().and(b.not()));
            }
        }
    }

    #[test]
    fn and_or_are_commutative_and_associative() {
        for a in ALL {
            for b in ALL {
                assert_eq!(a.and(b), b.and(a));
                assert_eq!(a.or(b), b.or(a));
                for c in ALL {
                    assert_eq!(a.and(b).and(c), a.and(b.and(c)));
                    assert_eq!(a.or(b).or(c), a.or(b.or(c)));
                }
            }
        }
    }

    #[test]
    fn only_true_passes() {
        assert!(True.passes());
        assert!(!False.passes());
        assert!(!Unknown.passes());
    }

    #[test]
    fn bool_round_trip() {
        assert_eq!(Truth::from(true), True);
        assert_eq!(Truth::from(false), False);
        assert_eq!(True.to_option(), Some(true));
        assert_eq!(False.to_option(), Some(false));
        assert_eq!(Unknown.to_option(), None);
    }
}
