//! Databases: named relations over mutually disjoint schemes, plus
//! constraints (paper Sec 3, *Preliminaries*).
//!
//! A database's relations live in one of two interchangeable backends
//! (the `Storage` seam): fully **in memory** (the default, and what
//! every mutating operation normalizes to) or **paged** on disk behind
//! a buffer pool ([`crate::storage`]), where relations fault in on
//! demand so the working set — not the database — bounds memory. All
//! read accessors answer identically on either backend.

use std::fmt;
use std::path::Path;
use std::sync::Arc;

use crate::constraints::Constraints;
use crate::error::{Error, Result};
use crate::index::ValueIndex;
use crate::relation::Relation;
use crate::schema::RelSchema;
use crate::storage::PagedStorage;

/// Where a database's relations live.
#[derive(Debug, Clone)]
enum Storage {
    /// Every relation resident, in insertion order.
    Memory(Vec<Relation>),
    /// Relations in paged heap files, faulted in on demand.
    Paged(PagedStorage),
}

/// A database: a set of relations plus schema constraints.
#[derive(Debug, Clone)]
pub struct Database {
    storage: Storage,
    /// Declared/mined constraints over the schema.
    pub constraints: Constraints,
}

impl Default for Database {
    fn default() -> Database {
        Database {
            storage: Storage::Memory(Vec::new()),
            constraints: Constraints::default(),
        }
    }
}

/// The first way `new` differs from `old` as a replacement scheme, or
/// `None` when the schemes are compatible (same attribute names, types,
/// and nullability, in order).
fn scheme_mismatch_detail(old: &RelSchema, new: &RelSchema) -> Option<String> {
    if old.arity() != new.arity() {
        return Some(format!(
            "arity changed from {} to {}",
            old.arity(),
            new.arity()
        ));
    }
    for (a, b) in old.attrs().iter().zip(new.attrs()) {
        if a.name != b.name {
            return Some(format!("attribute `{}` renamed to `{}`", a.name, b.name));
        }
        if a.ty != b.ty {
            return Some(format!(
                "attribute `{}` changed type from {} to {}",
                a.name, a.ty, b.ty
            ));
        }
        if a.not_null != b.not_null {
            let (was, is) = if a.not_null {
                ("not null", "nullable")
            } else {
                ("nullable", "not null")
            };
            return Some(format!("attribute `{}` changed from {was} to {is}", a.name));
        }
    }
    None
}

impl Database {
    /// An empty database.
    #[must_use]
    pub fn new() -> Database {
        Database::default()
    }

    /// A database over an already-opened paged backend.
    pub(crate) fn from_paged(paged: PagedStorage, constraints: Constraints) -> Database {
        Database {
            storage: Storage::Paged(paged),
            constraints,
        }
    }

    /// Add a relation; names must be unique.
    pub fn add_relation(&mut self, rel: Relation) -> Result<()> {
        if self.has_relation(rel.name()) {
            return Err(Error::DuplicateRelation(rel.name().to_owned()));
        }
        self.promote()?;
        let Storage::Memory(relations) = &mut self.storage else {
            unreachable!("promote() normalizes to the memory backend");
        };
        relations.push(rel);
        Ok(())
    }

    /// Look up a relation by name.
    pub fn relation(&self, name: &str) -> Result<&Relation> {
        match &self.storage {
            Storage::Memory(relations) => relations.iter().find(|r| r.name() == name),
            Storage::Paged(paged) => paged.relation(name),
        }
        .ok_or_else(|| Error::UnknownRelation(name.to_owned()))
    }

    /// Replace an existing relation wholesale (content edit). Errors
    /// when no relation with that name exists, or when the replacement's
    /// scheme is incompatible with the original (attribute names, types,
    /// or nullability differ) — derived state such as [`ValueIndex`]
    /// snapshots and cache fingerprints key off the scheme, so a
    /// scheme-changing edit must be rejected rather than silently
    /// corrupting it.
    pub fn replace_relation(&mut self, rel: Relation) -> Result<()> {
        let old = self.relation(rel.name())?.schema().clone();
        if let Some(detail) = scheme_mismatch_detail(&old, rel.schema()) {
            return Err(Error::SchemeMismatch {
                relation: rel.name().to_owned(),
                detail,
            });
        }
        let slot = self.relation_mut(rel.name())?;
        *slot = rel;
        Ok(())
    }

    /// Mutable lookup. On the paged backend this first materializes the
    /// whole database in memory ([`Database::promote`]), since handing
    /// out `&mut` into a shared page cache would alias snapshots.
    pub fn relation_mut(&mut self, name: &str) -> Result<&mut Relation> {
        self.promote()?;
        let Storage::Memory(relations) = &mut self.storage else {
            unreachable!("promote() normalizes to the memory backend");
        };
        relations
            .iter_mut()
            .find(|r| r.name() == name)
            .ok_or_else(|| Error::UnknownRelation(name.to_owned()))
    }

    /// All relations, in insertion order. On the paged backend this
    /// faults relations in on first touch; a relation whose heap file
    /// has become unreadable is skipped (already logged and counted by
    /// the pager) rather than served wrong.
    pub fn relations(&self) -> Box<dyn Iterator<Item = &Relation> + '_> {
        match &self.storage {
            Storage::Memory(relations) => Box::new(relations.iter()),
            Storage::Paged(paged) => Box::new(paged.iter_relations()),
        }
    }

    /// Number of relations (from the schema — never faults data in).
    #[must_use]
    pub fn relation_count(&self) -> usize {
        match &self.storage {
            Storage::Memory(relations) => relations.len(),
            Storage::Paged(paged) => paged.schemas().len(),
        }
    }

    /// All relation names, in insertion order.
    #[must_use]
    pub fn relation_names(&self) -> Vec<&str> {
        match &self.storage {
            Storage::Memory(relations) => relations.iter().map(Relation::name).collect(),
            Storage::Paged(paged) => paged.schemas().iter().map(RelSchema::name).collect(),
        }
    }

    /// Does a relation with this name exist?
    #[must_use]
    pub fn has_relation(&self, name: &str) -> bool {
        match &self.storage {
            Storage::Memory(relations) => relations.iter().any(|r| r.name() == name),
            Storage::Paged(paged) => paged.schemas().iter().any(|s| s.name() == name),
        }
    }

    /// Total number of stored tuples across relations.
    #[must_use]
    pub fn total_rows(&self) -> usize {
        match &self.storage {
            Storage::Memory(relations) => relations.iter().map(Relation::len).sum(),
            Storage::Paged(paged) => paged.total_rows(),
        }
    }

    /// The persisted [`ValueIndex`] shipped with a paged database, if
    /// this database is paged and its `_index.clh` loads cleanly.
    /// `None` means the caller should build the index itself (the
    /// in-memory backend, or a corrupt/missing index file — degraded,
    /// never wrong).
    #[must_use]
    pub fn stored_index(&self) -> Option<Arc<ValueIndex>> {
        match &self.storage {
            Storage::Memory(_) => None,
            Storage::Paged(paged) => paged.stored_index(),
        }
    }

    /// The on-disk directory backing this database, when paged.
    #[must_use]
    pub fn paged_dir(&self) -> Option<&Path> {
        match &self.storage {
            Storage::Memory(_) => None,
            Storage::Paged(paged) => Some(paged.dir()),
        }
    }

    /// Normalize to the in-memory backend, materializing every relation
    /// from the page files. A no-op when already in memory. Mutating
    /// operations call this first, so edits never write through to the
    /// source directory.
    pub fn promote(&mut self) -> Result<()> {
        if let Storage::Paged(paged) = &self.storage {
            let relations = paged.materialize_all()?;
            self.storage = Storage::Memory(relations);
        }
        Ok(())
    }

    /// Validate all declared constraints against the current instance.
    pub fn check_constraints(&self) -> Result<()> {
        self.constraints.check_all(self)
    }
}

impl PartialEq for Database {
    fn eq(&self, other: &Database) -> bool {
        self.constraints == other.constraints
            && self.relation_count() == other.relation_count()
            && self.relations().eq(other.relations())
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for rel in self.relations() {
            writeln!(f, "{}", rel.schema())?;
            writeln!(f, "{rel}")?;
        }
        for k in &self.constraints.keys {
            writeln!(f, "{k}")?;
        }
        for fk in &self.constraints.foreign_keys {
            writeln!(f, "{fk}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::ForeignKey;
    use crate::relation::RelationBuilder;
    use crate::value::DataType;

    fn db() -> Database {
        let mut db = Database::new();
        db.add_relation(
            RelationBuilder::new("Children")
                .attr_not_null("ID", DataType::Str)
                .row(vec!["001".into()])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.add_relation(
            RelationBuilder::new("Parents")
                .attr_not_null("ID", DataType::Str)
                .row(vec!["201".into()])
                .row(vec!["202".into()])
                .build()
                .unwrap(),
        )
        .unwrap();
        db
    }

    #[test]
    fn add_and_lookup() {
        let db = db();
        assert!(db.has_relation("Children"));
        assert!(!db.has_relation("Kids"));
        assert_eq!(db.relation("Parents").unwrap().len(), 2);
        assert!(matches!(
            db.relation("Kids"),
            Err(Error::UnknownRelation(_))
        ));
    }

    #[test]
    fn duplicate_relation_rejected() {
        let mut db = db();
        let dup = RelationBuilder::new("Children")
            .attr("x", DataType::Int)
            .build()
            .unwrap();
        assert!(matches!(
            db.add_relation(dup),
            Err(Error::DuplicateRelation(_))
        ));
    }

    #[test]
    fn names_and_counts() {
        let db = db();
        assert_eq!(db.relation_names(), vec!["Children", "Parents"]);
        assert_eq!(db.relation_count(), 2);
        assert_eq!(db.total_rows(), 3);
    }

    #[test]
    fn mutation_through_relation_mut() {
        let mut db = db();
        db.relation_mut("Children")
            .unwrap()
            .insert(vec!["002".into()])
            .unwrap();
        assert_eq!(db.relation("Children").unwrap().len(), 2);
    }

    #[test]
    fn replace_with_compatible_scheme_succeeds() {
        let mut db = db();
        let replacement = RelationBuilder::new("Children")
            .attr_not_null("ID", DataType::Str)
            .row(vec!["009".into()])
            .row(vec!["010".into()])
            .build()
            .unwrap();
        db.replace_relation(replacement).unwrap();
        assert_eq!(db.relation("Children").unwrap().len(), 2);
    }

    #[test]
    fn replace_with_different_arity_rejected() {
        let mut db = db();
        let wide = RelationBuilder::new("Children")
            .attr_not_null("ID", DataType::Str)
            .attr("name", DataType::Str)
            .build()
            .unwrap();
        let err = db.replace_relation(wide).unwrap_err();
        assert_eq!(
            err.to_string(),
            "cannot replace relation `Children`: arity changed from 1 to 2"
        );
        // The original survives the rejected edit untouched.
        assert_eq!(db.relation("Children").unwrap().len(), 1);
    }

    #[test]
    fn replace_with_renamed_attribute_rejected() {
        let mut db = db();
        let renamed = RelationBuilder::new("Children")
            .attr_not_null("Id", DataType::Str)
            .build()
            .unwrap();
        let err = db.replace_relation(renamed).unwrap_err();
        assert_eq!(
            err.to_string(),
            "cannot replace relation `Children`: attribute `ID` renamed to `Id`"
        );
    }

    #[test]
    fn replace_with_changed_type_rejected() {
        let mut db = db();
        let retyped = RelationBuilder::new("Children")
            .attr_not_null("ID", DataType::Int)
            .build()
            .unwrap();
        let err = db.replace_relation(retyped).unwrap_err();
        assert_eq!(
            err.to_string(),
            "cannot replace relation `Children`: attribute `ID` changed type from str to int"
        );
    }

    #[test]
    fn replace_with_changed_nullability_rejected() {
        let mut db = db();
        let relaxed = RelationBuilder::new("Children")
            .attr("ID", DataType::Str)
            .build()
            .unwrap();
        let err = db.replace_relation(relaxed).unwrap_err();
        assert_eq!(
            err.to_string(),
            "cannot replace relation `Children`: attribute `ID` changed from not null to nullable"
        );
        // And the opposite direction.
        let mut db2 = Database::new();
        db2.add_relation(
            RelationBuilder::new("R")
                .attr("x", DataType::Int)
                .build()
                .unwrap(),
        )
        .unwrap();
        let tightened = RelationBuilder::new("R")
            .attr_not_null("x", DataType::Int)
            .build()
            .unwrap();
        let err = db2.replace_relation(tightened).unwrap_err();
        assert_eq!(
            err.to_string(),
            "cannot replace relation `R`: attribute `x` changed from nullable to not null"
        );
    }

    #[test]
    fn replace_unknown_relation_rejected() {
        let mut db = db();
        let rel = RelationBuilder::new("Kids")
            .attr("ID", DataType::Str)
            .build()
            .unwrap();
        assert!(matches!(
            db.replace_relation(rel),
            Err(Error::UnknownRelation(_))
        ));
    }

    #[test]
    fn display_includes_schema_and_constraints() {
        let mut db = db();
        db.constraints
            .foreign_keys
            .push(ForeignKey::simple("Children", "ID", "Parents", "ID"));
        let s = db.to_string();
        assert!(s.contains("Children(ID: str not null)"));
        assert!(s.contains("fk Children(ID) -> Parents(ID)"));
    }
}
