//! Databases: named relations over mutually disjoint schemes, plus
//! constraints (paper Sec 3, *Preliminaries*).

use std::fmt;

use crate::constraints::Constraints;
use crate::error::{Error, Result};
use crate::relation::Relation;

/// A database: a set of relations plus schema constraints.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Database {
    relations: Vec<Relation>,
    /// Declared/mined constraints over the schema.
    pub constraints: Constraints,
}

impl Database {
    /// An empty database.
    #[must_use]
    pub fn new() -> Database {
        Database::default()
    }

    /// Add a relation; names must be unique.
    pub fn add_relation(&mut self, rel: Relation) -> Result<()> {
        if self.relations.iter().any(|r| r.name() == rel.name()) {
            return Err(Error::DuplicateRelation(rel.name().to_owned()));
        }
        self.relations.push(rel);
        Ok(())
    }

    /// Look up a relation by name.
    pub fn relation(&self, name: &str) -> Result<&Relation> {
        self.relations
            .iter()
            .find(|r| r.name() == name)
            .ok_or_else(|| Error::UnknownRelation(name.to_owned()))
    }

    /// Replace an existing relation wholesale (content edit). Errors
    /// when no relation with that name exists; the caller is
    /// responsible for schema compatibility with anything derived from
    /// the old contents.
    pub fn replace_relation(&mut self, rel: Relation) -> Result<()> {
        let slot = self.relation_mut(rel.name())?;
        *slot = rel;
        Ok(())
    }

    /// Mutable lookup.
    pub fn relation_mut(&mut self, name: &str) -> Result<&mut Relation> {
        self.relations
            .iter_mut()
            .find(|r| r.name() == name)
            .ok_or_else(|| Error::UnknownRelation(name.to_owned()))
    }

    /// All relations, in insertion order.
    #[must_use]
    pub fn relations(&self) -> &[Relation] {
        &self.relations
    }

    /// All relation names, in insertion order.
    #[must_use]
    pub fn relation_names(&self) -> Vec<&str> {
        self.relations.iter().map(Relation::name).collect()
    }

    /// Does a relation with this name exist?
    #[must_use]
    pub fn has_relation(&self, name: &str) -> bool {
        self.relations.iter().any(|r| r.name() == name)
    }

    /// Total number of stored tuples across relations.
    #[must_use]
    pub fn total_rows(&self) -> usize {
        self.relations.iter().map(Relation::len).sum()
    }

    /// Validate all declared constraints against the current instance.
    pub fn check_constraints(&self) -> Result<()> {
        self.constraints.check_all(self)
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for rel in &self.relations {
            writeln!(f, "{}", rel.schema())?;
            writeln!(f, "{rel}")?;
        }
        for k in &self.constraints.keys {
            writeln!(f, "{k}")?;
        }
        for fk in &self.constraints.foreign_keys {
            writeln!(f, "{fk}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::ForeignKey;
    use crate::relation::RelationBuilder;
    use crate::value::DataType;

    fn db() -> Database {
        let mut db = Database::new();
        db.add_relation(
            RelationBuilder::new("Children")
                .attr_not_null("ID", DataType::Str)
                .row(vec!["001".into()])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.add_relation(
            RelationBuilder::new("Parents")
                .attr_not_null("ID", DataType::Str)
                .row(vec!["201".into()])
                .row(vec!["202".into()])
                .build()
                .unwrap(),
        )
        .unwrap();
        db
    }

    #[test]
    fn add_and_lookup() {
        let db = db();
        assert!(db.has_relation("Children"));
        assert!(!db.has_relation("Kids"));
        assert_eq!(db.relation("Parents").unwrap().len(), 2);
        assert!(matches!(
            db.relation("Kids"),
            Err(Error::UnknownRelation(_))
        ));
    }

    #[test]
    fn duplicate_relation_rejected() {
        let mut db = db();
        let dup = RelationBuilder::new("Children")
            .attr("x", DataType::Int)
            .build()
            .unwrap();
        assert!(matches!(
            db.add_relation(dup),
            Err(Error::DuplicateRelation(_))
        ));
    }

    #[test]
    fn names_and_counts() {
        let db = db();
        assert_eq!(db.relation_names(), vec!["Children", "Parents"]);
        assert_eq!(db.total_rows(), 3);
    }

    #[test]
    fn mutation_through_relation_mut() {
        let mut db = db();
        db.relation_mut("Children")
            .unwrap()
            .insert(vec!["002".into()])
            .unwrap();
        assert_eq!(db.relation("Children").unwrap().len(), 2);
    }

    #[test]
    fn display_includes_schema_and_constraints() {
        let mut db = db();
        db.constraints
            .foreign_keys
            .push(ForeignKey::simple("Children", "ID", "Parents", "ID"));
        let s = db.to_string();
        assert!(s.contains("Children(ID: str not null)"));
        assert!(s.contains("fk Children(ID) -> Parents(ID)"));
    }
}
