//! Tiny JSON string helpers (this crate has no serde).

/// Escape and double-quote a string per RFC 8259.
#[must_use]
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::quote;

    #[test]
    fn escapes_specials() {
        assert_eq!(quote("plain"), "\"plain\"");
        assert_eq!(quote("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(quote("x\n\t\u{1}"), "\"x\\n\\t\\u0001\"");
    }
}
