//! Named monotonic counters for engine work units.
//!
//! Counters are global relaxed `AtomicU64`s indexed by the [`Counter`]
//! enum, gated by a single relaxed `AtomicBool`. Disabled counting is a
//! load-and-branch; enabled counting is a relaxed `fetch_add`. Hot
//! loops should accumulate into locals and [`add`] once per operation.
//!
//! ## Per-session aggregation
//!
//! A thread may carry an optional numeric **session label** (installed
//! with [`with_session`] or [`set_session`]; inherited by `exec` pool
//! workers). While a label is active, every enabled [`add`] is mirrored
//! into a per-label counter table alongside the global one, giving each
//! concurrent session its own view (see `docs/concurrency.md`). The
//! labeled tables surface through [`session_snapshot`] and the
//! `"sessions"` object of the `--metrics` JSON report.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Every engine counter. The discriminant doubles as the index into the
/// global counter table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Counter {
    /// Input tuples visited by scans, joins, and selections.
    TuplesScanned,
    /// Hash-table probes (or nested-loop pair tests) performed by joins.
    JoinProbes,
    /// Tuples emitted by join operators.
    JoinOutputRows,
    /// Tuple-pair subsumption tests (naive) or partition probes
    /// (partitioned) performed during subsumption removal.
    SubsumptionComparisons,
    /// Tuples removed because another tuple subsumed them.
    TuplesSubsumed,
    /// Adaptive subsumption dispatches (`SubsumptionAlgo::Adaptive`
    /// calls that picked a concrete algorithm).
    SubsumptionAdaptiveChoices,
    /// Connected subgraphs enumerated by the naive full disjunction.
    SubgraphsEnumerated,
    /// Binary outer-join steps executed by the outer-join full
    /// disjunction.
    OuterJoinSteps,
    /// Chase alternatives produced by `data_chase`.
    ChaseAlternativesGenerated,
    /// Chase candidate sites skipped (relation already in the graph).
    ChaseAlternativesPruned,
    /// Walk alternatives produced by `data_walk`.
    WalkAlternativesGenerated,
    /// Walk candidates dropped as duplicates of an existing alternative.
    WalkAlternativesPruned,
    /// Requirement-satisfaction tests evaluated during illustration
    /// selection.
    RequirementsChecked,
    /// Iterations of the greedy set-cover loop in illustration
    /// selection (one per chosen example).
    GreedyIterations,
    /// Incremental-cache lookups answered from the cache.
    CacheHits,
    /// Incremental-cache lookups that fell through to a computation.
    CacheMisses,
    /// Incremental-cache entries dropped because a dependency (base
    /// relation content, function registry) changed.
    CacheInvalidations,
    /// Bytes of result tables stored into the incremental cache
    /// (cumulative; the `cache` shell command reports the live size).
    CacheBytes,
    /// Incremental-cache entries spilled to a persistent backend
    /// (`clio_incr`'s `CacheStore`).
    CacheSpills,
    /// Incremental-cache lookups answered from a persistent backend
    /// after missing in memory.
    CacheDiskHits,
    /// Bytes written to a persistent cache backend (cumulative).
    CacheDiskBytes,
    /// Persistent-backend load failures tolerated by falling back to
    /// recomputation (corrupt files, version mismatches, I/O errors).
    CacheLoadErrors,
    /// Incremental-cache entries dropped to stay under the byte budget
    /// (either policy).
    CacheEvictions,
    /// Evictions chosen by the cost-aware policy (a subset of
    /// `cache.evictions`).
    CacheCostEvictions,
    /// Recompute nanoseconds avoided by cache answers: each hit adds
    /// the answering entry's recorded recompute cost. Wall-clock
    /// derived, so normalized away in golden-counter gates.
    CacheSavedNs,
    /// Connections accepted by the network front-end.
    NetAccepted,
    /// Connections currently being served (a gauge: incremented on
    /// accept, decremented — via [`sub`] — when the connection closes).
    NetActive,
    /// Well-formed request frames decoded by the network front-end.
    NetFrames,
    /// Malformed frames (bad version byte, oversized or truncated
    /// frames, non-UTF-8 payloads) answered with an error frame.
    NetFrameErrors,
    /// Connections closed because the client sent nothing for the
    /// server's idle timeout.
    NetTimeouts,
    /// Pages read from heap files by the pager (buffer-pool misses that
    /// reached the disk).
    PagerPageReads,
    /// Pages written back to heap files by the pager (dirty-page
    /// write-back on eviction or flush).
    PagerPageWrites,
    /// Buffer-pool lookups answered by a resident frame.
    PagerHits,
    /// Buffer-pool lookups that had to read the page from disk.
    PagerMisses,
    /// Frames evicted from the buffer pool to stay under its page
    /// budget.
    PagerEvictions,
    /// Page or heap-file load failures tolerated by degrading to a
    /// typed error (corrupt pages, version mismatches, I/O errors) —
    /// never a wrong answer.
    PagerLoadErrors,
    /// Mapping plans built (one per `explain` or planned evaluation).
    PlanBuilt,
    /// Source filters pushed below the full-disjunction union by the
    /// filter-pushdown rewrite (strong filters only; see docs/planner.md).
    PlanPushedFilters,
    /// Connected subgraphs skipped entirely because a pushed filter's
    /// aliases lie outside the subgraph (its padded rows cannot pass).
    PlanPrunedSubgraphs,
    /// Mapping evaluations answered through the planned path.
    PlanEvals,
}

/// Number of counters (length of [`Counter::ALL`]).
pub const COUNTER_COUNT: usize = Counter::ALL.len();

impl Counter {
    /// All counters, in table order.
    pub const ALL: [Counter; 40] = [
        Counter::TuplesScanned,
        Counter::JoinProbes,
        Counter::JoinOutputRows,
        Counter::SubsumptionComparisons,
        Counter::TuplesSubsumed,
        Counter::SubsumptionAdaptiveChoices,
        Counter::SubgraphsEnumerated,
        Counter::OuterJoinSteps,
        Counter::ChaseAlternativesGenerated,
        Counter::ChaseAlternativesPruned,
        Counter::WalkAlternativesGenerated,
        Counter::WalkAlternativesPruned,
        Counter::RequirementsChecked,
        Counter::GreedyIterations,
        Counter::CacheHits,
        Counter::CacheMisses,
        Counter::CacheInvalidations,
        Counter::CacheBytes,
        Counter::CacheSpills,
        Counter::CacheDiskHits,
        Counter::CacheDiskBytes,
        Counter::CacheLoadErrors,
        Counter::CacheEvictions,
        Counter::CacheCostEvictions,
        Counter::CacheSavedNs,
        Counter::NetAccepted,
        Counter::NetActive,
        Counter::NetFrames,
        Counter::NetFrameErrors,
        Counter::NetTimeouts,
        Counter::PagerPageReads,
        Counter::PagerPageWrites,
        Counter::PagerHits,
        Counter::PagerMisses,
        Counter::PagerEvictions,
        Counter::PagerLoadErrors,
        Counter::PlanBuilt,
        Counter::PlanPushedFilters,
        Counter::PlanPrunedSubgraphs,
        Counter::PlanEvals,
    ];

    /// The stable dotted name used in JSON snapshots and the `stats`
    /// shell command.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Counter::TuplesScanned => "scan.tuples",
            Counter::JoinProbes => "join.probes",
            Counter::JoinOutputRows => "join.output_rows",
            Counter::SubsumptionComparisons => "subsumption.comparisons",
            Counter::TuplesSubsumed => "subsumption.removed",
            Counter::SubsumptionAdaptiveChoices => "subsumption.adaptive_choices",
            Counter::SubgraphsEnumerated => "fd.subgraphs",
            Counter::OuterJoinSteps => "fd.outer_join_steps",
            Counter::ChaseAlternativesGenerated => "chase.alternatives_generated",
            Counter::ChaseAlternativesPruned => "chase.alternatives_pruned",
            Counter::WalkAlternativesGenerated => "walk.alternatives_generated",
            Counter::WalkAlternativesPruned => "walk.alternatives_pruned",
            Counter::RequirementsChecked => "illustration.requirements_checked",
            Counter::GreedyIterations => "illustration.greedy_iterations",
            Counter::CacheHits => "cache.hits",
            Counter::CacheMisses => "cache.misses",
            Counter::CacheInvalidations => "cache.invalidations",
            Counter::CacheBytes => "cache.bytes",
            Counter::CacheSpills => "cache.spills",
            Counter::CacheDiskHits => "cache.disk_hits",
            Counter::CacheDiskBytes => "cache.disk_bytes",
            Counter::CacheLoadErrors => "cache.load_errors",
            Counter::CacheEvictions => "cache.evictions",
            Counter::CacheCostEvictions => "cache.cost_evictions",
            Counter::CacheSavedNs => "cache.saved_ns",
            Counter::NetAccepted => "net.accepted",
            Counter::NetActive => "net.active",
            Counter::NetFrames => "net.frames",
            Counter::NetFrameErrors => "net.frame_errors",
            Counter::NetTimeouts => "net.timeouts",
            Counter::PagerPageReads => "pager.page_reads",
            Counter::PagerPageWrites => "pager.page_writes",
            Counter::PagerHits => "pager.hits",
            Counter::PagerMisses => "pager.misses",
            Counter::PagerEvictions => "pager.evictions",
            Counter::PagerLoadErrors => "pager.load_errors",
            Counter::PlanBuilt => "plan.built",
            Counter::PlanPushedFilters => "plan.pushed_filters",
            Counter::PlanPrunedSubgraphs => "plan.pruned_subgraphs",
            Counter::PlanEvals => "plan.evals",
        }
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);

#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);
static COUNTERS: [AtomicU64; COUNTER_COUNT] = [ZERO; COUNTER_COUNT];

thread_local! {
    /// The session label carried by the current thread, if any.
    static SESSION: Cell<Option<u64>> = const { Cell::new(None) };
}

/// Per-label counter tables, keyed by session label. A `BTreeMap` so
/// JSON reports list sessions in label order.
static SESSION_COUNTERS: Mutex<BTreeMap<u64, [u64; COUNTER_COUNT]>> = Mutex::new(BTreeMap::new());

/// Display names for session labels. Batch sessions keep their numeric
/// label; the network front-end registers `conn.<n>` so per-connection
/// tables are recognizable in reports (see [`session_display`]).
static SESSION_NAMES: Mutex<BTreeMap<u64, String>> = Mutex::new(BTreeMap::new());

fn names_lock() -> MutexGuard<'static, BTreeMap<u64, String>> {
    SESSION_NAMES.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Register a display name for a session label, used as the label's key
/// in JSON reports. Unnamed labels render as the number itself, which
/// keeps batch-mode reports byte-identical.
pub fn set_session_name(label: u64, name: &str) {
    names_lock().insert(label, name.to_owned());
}

/// The display name for a session label: the registered name, or the
/// numeric label rendered as a string.
#[must_use]
pub fn session_display(label: u64) -> String {
    names_lock()
        .get(&label)
        .cloned()
        .unwrap_or_else(|| label.to_string())
}

fn session_lock() -> MutexGuard<'static, BTreeMap<u64, [u64; COUNTER_COUNT]>> {
    SESSION_COUNTERS
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// Install (or clear, with `None`) the current thread's session label.
/// Prefer [`with_session`], which restores the previous label.
pub fn set_session(label: Option<u64>) {
    SESSION.with(|s| s.set(label));
}

/// The current thread's session label, if one is installed.
#[must_use]
pub fn current_session() -> Option<u64> {
    SESSION.with(Cell::get)
}

/// Run `f` with the given session label installed on this thread,
/// restoring the previous label afterwards (also on panic).
pub fn with_session<R>(label: Option<u64>, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<u64>);
    impl Drop for Restore {
        fn drop(&mut self) {
            SESSION.with(|s| s.set(self.0));
        }
    }
    let _restore = Restore(SESSION.with(|s| s.replace(label)));
    f()
}

/// Ensure a (possibly all-zero) counter table exists for `label`, so a
/// session that did no counted work still appears in reports. No-op
/// while metrics are disabled.
pub fn touch_session(label: u64) {
    if ENABLED.load(Ordering::Relaxed) {
        session_lock().entry(label).or_insert([0; COUNTER_COUNT]);
    }
}

/// Labels that have recorded (or touched) a per-session counter table,
/// in ascending order.
#[must_use]
pub fn session_labels() -> Vec<u64> {
    session_lock().keys().copied().collect()
}

/// Snapshot of one session's counter table, if that label has recorded
/// anything.
#[must_use]
pub fn session_snapshot(label: u64) -> Option<MetricsSnapshot> {
    session_lock()
        .get(&label)
        .map(|values| MetricsSnapshot { values: *values })
}

/// The snapshot for the current context: the per-session table when this
/// thread carries a label (and the label has recorded work), the global
/// table otherwise. The `stats` shell command uses this so each pooled
/// session reports its own work.
#[must_use]
pub fn context_snapshot() -> MetricsSnapshot {
    current_session()
        .and_then(session_snapshot)
        .unwrap_or_else(snapshot)
}

/// Turn counting on or off (off by default).
pub fn set_metrics_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether counting is currently on.
#[must_use]
pub fn metrics_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Add `n` to a counter (no-op while disabled). When the current thread
/// carries a session label, the add is mirrored into that session's
/// table as well as the global one.
#[inline]
pub fn add(counter: Counter, n: u64) {
    if ENABLED.load(Ordering::Relaxed) {
        COUNTERS[counter as usize].fetch_add(n, Ordering::Relaxed);
        if let Some(label) = SESSION.with(Cell::get) {
            session_lock().entry(label).or_insert([0; COUNTER_COUNT])[counter as usize] += n;
        }
    }
}

/// Add 1 to a counter (no-op while disabled).
#[inline]
pub fn incr(counter: Counter) {
    add(counter, 1);
}

/// Subtract `n` from a counter, saturating at zero (no-op while
/// disabled). Only gauge-style counters use this — today that is
/// [`Counter::NetActive`], decremented when a connection closes; every
/// other counter stays monotonic.
pub fn sub(counter: Counter, n: u64) {
    if ENABLED.load(Ordering::Relaxed) {
        let _ =
            COUNTERS[counter as usize].fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(n))
            });
        if let Some(label) = SESSION.with(Cell::get) {
            let mut sessions = session_lock();
            let slot = &mut sessions.entry(label).or_insert([0; COUNTER_COUNT])[counter as usize];
            *slot = slot.saturating_sub(n);
        }
    }
}

/// Current value of one counter.
#[must_use]
pub fn value(counter: Counter) -> u64 {
    COUNTERS[counter as usize].load(Ordering::Relaxed)
}

/// Zero every counter, global and per-session, and forget registered
/// session names (leaves the enabled flag and installed session labels
/// untouched).
pub fn reset_metrics() {
    for c in &COUNTERS {
        c.store(0, Ordering::Relaxed);
    }
    session_lock().clear();
    names_lock().clear();
}

/// A point-in-time copy of every counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    values: [u64; COUNTER_COUNT],
}

/// Read all counters at once.
#[must_use]
pub fn snapshot() -> MetricsSnapshot {
    let mut values = [0u64; COUNTER_COUNT];
    for (slot, c) in values.iter_mut().zip(&COUNTERS) {
        *slot = c.load(Ordering::Relaxed);
    }
    MetricsSnapshot { values }
}

impl MetricsSnapshot {
    /// Value of one counter in this snapshot.
    #[must_use]
    pub fn get(&self, counter: Counter) -> u64 {
        self.values[counter as usize]
    }

    /// `(name, value)` pairs in table order.
    pub fn entries(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        Counter::ALL.iter().map(|&c| (c.name(), self.get(c)))
    }

    /// Counter-wise difference `self - earlier` (for measuring one
    /// operation against a baseline snapshot).
    #[must_use]
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let mut values = [0u64; COUNTER_COUNT];
        for (i, slot) in values.iter_mut().enumerate() {
            *slot = self.values[i].saturating_sub(earlier.values[i]);
        }
        MetricsSnapshot { values }
    }

    /// Render as a JSON object `{"scan.tuples": 0, ...}`, indented by
    /// `indent` spaces (nested one level deeper).
    #[must_use]
    pub fn to_json_object(&self, indent: usize) -> String {
        let pad = " ".repeat(indent);
        let inner = " ".repeat(indent + 2);
        let mut out = String::from("{\n");
        let mut first = true;
        for (name, value) in self.entries() {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&format!("{inner}{}: {value}", crate::json::quote(name)));
        }
        out.push('\n');
        out.push_str(&pad);
        out.push('}');
        out
    }

    /// Human-readable aligned table (used by the `stats` shell command).
    #[must_use]
    pub fn render_table(&self) -> String {
        self.render_table_filtered("")
    }

    /// Like [`MetricsSnapshot::render_table`], keeping only counters
    /// whose dotted name contains `filter` (`"chase"` keeps
    /// `chase.alternatives_generated` and `chase.alternatives_pruned`).
    /// An empty filter keeps everything.
    #[must_use]
    pub fn render_table_filtered(&self, filter: &str) -> String {
        let names: Vec<(&'static str, u64)> = self
            .entries()
            .filter(|(name, _)| name.contains(filter))
            .collect();
        if names.is_empty() {
            return format!("no counters match `{filter}`\n");
        }
        let width = names.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (name, value) in names {
            out.push_str(&format!("{name:<width$}  {value}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Counter state is process-global; tests in this module serialize
    // themselves so their exact-value assertions cannot race.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn disabled_adds_are_dropped() {
        let _guard = LOCK.lock().unwrap();
        set_metrics_enabled(false);
        reset_metrics();
        add(Counter::JoinProbes, 100);
        assert_eq!(value(Counter::JoinProbes), 0);
    }

    #[test]
    fn enabled_adds_accumulate_and_snapshot() {
        let _guard = LOCK.lock().unwrap();
        set_metrics_enabled(true);
        reset_metrics();
        add(Counter::JoinProbes, 3);
        incr(Counter::JoinProbes);
        add(Counter::TuplesSubsumed, 7);
        let snap = snapshot();
        set_metrics_enabled(false);
        assert_eq!(snap.get(Counter::JoinProbes), 4);
        assert_eq!(snap.get(Counter::TuplesSubsumed), 7);
        assert_eq!(snap.get(Counter::GreedyIterations), 0);
        let json = snap.to_json_object(0);
        assert!(json.contains("\"join.probes\": 4"));
        assert!(json.contains("\"subsumption.removed\": 7"));
        let table = snap.render_table();
        assert!(table.contains("join.probes"));
    }

    #[test]
    fn since_subtracts_baseline() {
        let _guard = LOCK.lock().unwrap();
        set_metrics_enabled(true);
        reset_metrics();
        add(Counter::TuplesScanned, 10);
        let base = snapshot();
        add(Counter::TuplesScanned, 5);
        let delta = snapshot().since(&base);
        set_metrics_enabled(false);
        assert_eq!(delta.get(Counter::TuplesScanned), 5);
    }

    #[test]
    fn session_labels_mirror_adds_and_restore() {
        let _guard = LOCK.lock().unwrap();
        set_metrics_enabled(true);
        reset_metrics();
        assert!(session_labels().is_empty());
        add(Counter::JoinProbes, 2); // unlabeled: global only
        with_session(Some(7), || {
            assert_eq!(current_session(), Some(7));
            add(Counter::JoinProbes, 5);
            with_session(Some(9), || add(Counter::TuplesScanned, 1));
            assert_eq!(current_session(), Some(7), "nested label restored");
        });
        assert_eq!(current_session(), None);
        touch_session(11);
        set_metrics_enabled(false);
        assert_eq!(session_labels(), vec![7, 9, 11]);
        let s7 = session_snapshot(7).expect("session 7 recorded");
        assert_eq!(s7.get(Counter::JoinProbes), 5);
        assert_eq!(s7.get(Counter::TuplesScanned), 0);
        let s9 = session_snapshot(9).expect("session 9 recorded");
        assert_eq!(s9.get(Counter::TuplesScanned), 1);
        let s11 = session_snapshot(11).expect("touched session present");
        assert_eq!(s11.get(Counter::JoinProbes), 0);
        // global table saw everything
        assert_eq!(snapshot().get(Counter::JoinProbes), 7);
        assert!(session_snapshot(42).is_none());
        reset_metrics();
        assert!(session_labels().is_empty(), "reset clears session tables");
    }

    #[test]
    fn context_snapshot_prefers_the_thread_label() {
        let _guard = LOCK.lock().unwrap();
        set_metrics_enabled(true);
        reset_metrics();
        add(Counter::JoinProbes, 10);
        let ctx = with_session(Some(3), || {
            add(Counter::JoinProbes, 1);
            context_snapshot()
        });
        let global = context_snapshot();
        set_metrics_enabled(false);
        assert_eq!(ctx.get(Counter::JoinProbes), 1);
        assert_eq!(global.get(Counter::JoinProbes), 11);
        reset_metrics();
    }

    #[test]
    fn sub_saturates_and_mirrors_sessions() {
        let _guard = LOCK.lock().unwrap();
        set_metrics_enabled(true);
        reset_metrics();
        add(Counter::NetActive, 3);
        sub(Counter::NetActive, 2);
        assert_eq!(value(Counter::NetActive), 1);
        sub(Counter::NetActive, 10);
        assert_eq!(value(Counter::NetActive), 0, "saturates at zero");
        with_session(Some(4), || {
            add(Counter::NetActive, 2);
            sub(Counter::NetActive, 1);
        });
        let s4 = session_snapshot(4).expect("session 4 recorded");
        set_metrics_enabled(false);
        assert_eq!(s4.get(Counter::NetActive), 1);
        sub(Counter::NetActive, 1);
        assert_eq!(value(Counter::NetActive), 1, "disabled subs are dropped");
        reset_metrics();
    }

    #[test]
    fn session_names_register_and_reset() {
        let _guard = LOCK.lock().unwrap();
        reset_metrics();
        assert_eq!(session_display(3), "3", "unnamed labels stay numeric");
        set_session_name(3, "conn.3");
        assert_eq!(session_display(3), "conn.3");
        reset_metrics();
        assert_eq!(session_display(3), "3", "reset forgets names");
    }

    #[test]
    fn names_are_unique_and_dotted() {
        let mut names: Vec<_> = Counter::ALL.iter().map(|c| c.name()).collect();
        assert!(names.iter().all(|n| n.contains('.')));
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), COUNTER_COUNT);
    }
}
