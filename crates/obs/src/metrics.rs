//! Named monotonic counters for engine work units.
//!
//! Counters are global relaxed `AtomicU64`s indexed by the [`Counter`]
//! enum, gated by a single relaxed `AtomicBool`. Disabled counting is a
//! load-and-branch; enabled counting is a relaxed `fetch_add`. Hot
//! loops should accumulate into locals and [`add`] once per operation.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Every engine counter. The discriminant doubles as the index into the
/// global counter table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Counter {
    /// Input tuples visited by scans, joins, and selections.
    TuplesScanned,
    /// Hash-table probes (or nested-loop pair tests) performed by joins.
    JoinProbes,
    /// Tuples emitted by join operators.
    JoinOutputRows,
    /// Tuple-pair subsumption tests (naive) or partition probes
    /// (partitioned) performed during subsumption removal.
    SubsumptionComparisons,
    /// Tuples removed because another tuple subsumed them.
    TuplesSubsumed,
    /// Adaptive subsumption dispatches (`SubsumptionAlgo::Adaptive`
    /// calls that picked a concrete algorithm).
    SubsumptionAdaptiveChoices,
    /// Connected subgraphs enumerated by the naive full disjunction.
    SubgraphsEnumerated,
    /// Binary outer-join steps executed by the outer-join full
    /// disjunction.
    OuterJoinSteps,
    /// Chase alternatives produced by `data_chase`.
    ChaseAlternativesGenerated,
    /// Chase candidate sites skipped (relation already in the graph).
    ChaseAlternativesPruned,
    /// Walk alternatives produced by `data_walk`.
    WalkAlternativesGenerated,
    /// Walk candidates dropped as duplicates of an existing alternative.
    WalkAlternativesPruned,
    /// Requirement-satisfaction tests evaluated during illustration
    /// selection.
    RequirementsChecked,
    /// Iterations of the greedy set-cover loop in illustration
    /// selection (one per chosen example).
    GreedyIterations,
    /// Incremental-cache lookups answered from the cache.
    CacheHits,
    /// Incremental-cache lookups that fell through to a computation.
    CacheMisses,
    /// Incremental-cache entries dropped because a dependency (base
    /// relation content, function registry) changed.
    CacheInvalidations,
    /// Bytes of result tables stored into the incremental cache
    /// (cumulative; the `cache` shell command reports the live size).
    CacheBytes,
}

/// Number of counters (length of [`Counter::ALL`]).
pub const COUNTER_COUNT: usize = Counter::ALL.len();

impl Counter {
    /// All counters, in table order.
    pub const ALL: [Counter; 18] = [
        Counter::TuplesScanned,
        Counter::JoinProbes,
        Counter::JoinOutputRows,
        Counter::SubsumptionComparisons,
        Counter::TuplesSubsumed,
        Counter::SubsumptionAdaptiveChoices,
        Counter::SubgraphsEnumerated,
        Counter::OuterJoinSteps,
        Counter::ChaseAlternativesGenerated,
        Counter::ChaseAlternativesPruned,
        Counter::WalkAlternativesGenerated,
        Counter::WalkAlternativesPruned,
        Counter::RequirementsChecked,
        Counter::GreedyIterations,
        Counter::CacheHits,
        Counter::CacheMisses,
        Counter::CacheInvalidations,
        Counter::CacheBytes,
    ];

    /// The stable dotted name used in JSON snapshots and the `stats`
    /// shell command.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Counter::TuplesScanned => "scan.tuples",
            Counter::JoinProbes => "join.probes",
            Counter::JoinOutputRows => "join.output_rows",
            Counter::SubsumptionComparisons => "subsumption.comparisons",
            Counter::TuplesSubsumed => "subsumption.removed",
            Counter::SubsumptionAdaptiveChoices => "subsumption.adaptive_choices",
            Counter::SubgraphsEnumerated => "fd.subgraphs",
            Counter::OuterJoinSteps => "fd.outer_join_steps",
            Counter::ChaseAlternativesGenerated => "chase.alternatives_generated",
            Counter::ChaseAlternativesPruned => "chase.alternatives_pruned",
            Counter::WalkAlternativesGenerated => "walk.alternatives_generated",
            Counter::WalkAlternativesPruned => "walk.alternatives_pruned",
            Counter::RequirementsChecked => "illustration.requirements_checked",
            Counter::GreedyIterations => "illustration.greedy_iterations",
            Counter::CacheHits => "cache.hits",
            Counter::CacheMisses => "cache.misses",
            Counter::CacheInvalidations => "cache.invalidations",
            Counter::CacheBytes => "cache.bytes",
        }
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);

#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);
static COUNTERS: [AtomicU64; COUNTER_COUNT] = [ZERO; COUNTER_COUNT];

/// Turn counting on or off (off by default).
pub fn set_metrics_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether counting is currently on.
#[must_use]
pub fn metrics_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Add `n` to a counter (no-op while disabled).
#[inline]
pub fn add(counter: Counter, n: u64) {
    if ENABLED.load(Ordering::Relaxed) {
        COUNTERS[counter as usize].fetch_add(n, Ordering::Relaxed);
    }
}

/// Add 1 to a counter (no-op while disabled).
#[inline]
pub fn incr(counter: Counter) {
    add(counter, 1);
}

/// Current value of one counter.
#[must_use]
pub fn value(counter: Counter) -> u64 {
    COUNTERS[counter as usize].load(Ordering::Relaxed)
}

/// Zero every counter (leaves the enabled flag untouched).
pub fn reset_metrics() {
    for c in &COUNTERS {
        c.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of every counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    values: [u64; COUNTER_COUNT],
}

/// Read all counters at once.
#[must_use]
pub fn snapshot() -> MetricsSnapshot {
    let mut values = [0u64; COUNTER_COUNT];
    for (slot, c) in values.iter_mut().zip(&COUNTERS) {
        *slot = c.load(Ordering::Relaxed);
    }
    MetricsSnapshot { values }
}

impl MetricsSnapshot {
    /// Value of one counter in this snapshot.
    #[must_use]
    pub fn get(&self, counter: Counter) -> u64 {
        self.values[counter as usize]
    }

    /// `(name, value)` pairs in table order.
    pub fn entries(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        Counter::ALL.iter().map(|&c| (c.name(), self.get(c)))
    }

    /// Counter-wise difference `self - earlier` (for measuring one
    /// operation against a baseline snapshot).
    #[must_use]
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let mut values = [0u64; COUNTER_COUNT];
        for (i, slot) in values.iter_mut().enumerate() {
            *slot = self.values[i].saturating_sub(earlier.values[i]);
        }
        MetricsSnapshot { values }
    }

    /// Render as a JSON object `{"scan.tuples": 0, ...}`, indented by
    /// `indent` spaces (nested one level deeper).
    #[must_use]
    pub fn to_json_object(&self, indent: usize) -> String {
        let pad = " ".repeat(indent);
        let inner = " ".repeat(indent + 2);
        let mut out = String::from("{\n");
        let mut first = true;
        for (name, value) in self.entries() {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&format!("{inner}{}: {value}", crate::json::quote(name)));
        }
        out.push('\n');
        out.push_str(&pad);
        out.push('}');
        out
    }

    /// Human-readable aligned table (used by the `stats` shell command).
    #[must_use]
    pub fn render_table(&self) -> String {
        self.render_table_filtered("")
    }

    /// Like [`MetricsSnapshot::render_table`], keeping only counters
    /// whose dotted name contains `filter` (`"chase"` keeps
    /// `chase.alternatives_generated` and `chase.alternatives_pruned`).
    /// An empty filter keeps everything.
    #[must_use]
    pub fn render_table_filtered(&self, filter: &str) -> String {
        let names: Vec<(&'static str, u64)> = self
            .entries()
            .filter(|(name, _)| name.contains(filter))
            .collect();
        if names.is_empty() {
            return format!("no counters match `{filter}`\n");
        }
        let width = names.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (name, value) in names {
            out.push_str(&format!("{name:<width$}  {value}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Counter state is process-global; tests in this module serialize
    // themselves so their exact-value assertions cannot race.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn disabled_adds_are_dropped() {
        let _guard = LOCK.lock().unwrap();
        set_metrics_enabled(false);
        reset_metrics();
        add(Counter::JoinProbes, 100);
        assert_eq!(value(Counter::JoinProbes), 0);
    }

    #[test]
    fn enabled_adds_accumulate_and_snapshot() {
        let _guard = LOCK.lock().unwrap();
        set_metrics_enabled(true);
        reset_metrics();
        add(Counter::JoinProbes, 3);
        incr(Counter::JoinProbes);
        add(Counter::TuplesSubsumed, 7);
        let snap = snapshot();
        set_metrics_enabled(false);
        assert_eq!(snap.get(Counter::JoinProbes), 4);
        assert_eq!(snap.get(Counter::TuplesSubsumed), 7);
        assert_eq!(snap.get(Counter::GreedyIterations), 0);
        let json = snap.to_json_object(0);
        assert!(json.contains("\"join.probes\": 4"));
        assert!(json.contains("\"subsumption.removed\": 7"));
        let table = snap.render_table();
        assert!(table.contains("join.probes"));
    }

    #[test]
    fn since_subtracts_baseline() {
        let _guard = LOCK.lock().unwrap();
        set_metrics_enabled(true);
        reset_metrics();
        add(Counter::TuplesScanned, 10);
        let base = snapshot();
        add(Counter::TuplesScanned, 5);
        let delta = snapshot().since(&base);
        set_metrics_enabled(false);
        assert_eq!(delta.get(Counter::TuplesScanned), 5);
    }

    #[test]
    fn names_are_unique_and_dotted() {
        let mut names: Vec<_> = Counter::ALL.iter().map(|c| c.name()).collect();
        assert!(names.iter().all(|n| n.contains('.')));
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), COUNTER_COUNT);
    }
}
