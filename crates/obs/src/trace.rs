//! Hierarchical span tracing via RAII guards.
//!
//! [`span`] returns a guard; guards opened while another guard is alive
//! on the same thread become its children (a thread-local stack tracks
//! nesting). Finished spans are appended to a thread-safe global
//! collector. The whole subsystem is gated by one relaxed `AtomicBool`:
//! while disabled, [`span`] is a load-and-branch that never reads the
//! clock and its guard's `Drop` does nothing.
//!
//! While enabled, each finished span also feeds the timing-telemetry
//! surface: its duration lands in the per-name latency histogram
//! ([`crate::hist`]) and the bounded event ring ([`crate::events`]),
//! and a span slower than the configured threshold (see
//! [`set_slow_threshold_ns`]) emits a rate-limited stderr warning with
//! its ancestry path.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);
static COLLECTOR: Mutex<Vec<SpanRecord>> = Mutex::new(Vec::new());
/// Spans at least this slow warn on drop; 0 disables the check.
static SLOW_NS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static STACK: RefCell<Vec<(u64, &'static str)>> = const { RefCell::new(Vec::new()) };
    static THREAD_ORDINAL: u64 = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
}

/// Turn tracing on or off (off by default). Enabling pins the process
/// trace epoch (see [`crate::events::epoch`]) so event offsets start
/// near zero.
pub fn set_trace_enabled(on: bool) {
    if on {
        crate::events::epoch();
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Warn (rate-limited, with the span's ancestry path) whenever a span's
/// wall-clock duration reaches `ns`. 0 — the default — disables the
/// check. The CLI maps `--slow-ms <n>` / `CLIO_SLOW_MS` here.
pub fn set_slow_threshold_ns(ns: u64) {
    SLOW_NS.store(ns, Ordering::Relaxed);
}

/// The current slow-span threshold in nanoseconds (0 = disabled).
#[must_use]
pub fn slow_threshold_ns() -> u64 {
    SLOW_NS.load(Ordering::Relaxed)
}

/// Whether tracing is currently on.
#[must_use]
pub fn trace_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// One finished span.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Unique id, monotonically increasing in start order.
    pub id: u64,
    /// Id of the enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Static span name (dotted, e.g. `fd.naive`).
    pub name: &'static str,
    /// Wall-clock duration in nanoseconds.
    pub nanos: u128,
    /// Ordinal of the thread the span ran on.
    pub thread: u64,
}

/// RAII guard for one span; the span finishes when the guard drops.
#[must_use = "a span guard measures until it is dropped"]
pub struct Span {
    inner: Option<ActiveSpan>,
}

struct ActiveSpan {
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    epoch: Instant,
    start: Instant,
}

/// Open a span. While tracing is disabled this is one relaxed atomic
/// load and returns an inert guard.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !trace_enabled() {
        return Span { inner: None };
    }
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let parent = STACK.with(|s| {
        let mut stack = s.borrow_mut();
        let parent = stack.last().map(|&(id, _)| id);
        stack.push((id, name));
        parent
    });
    let epoch = crate::events::epoch();
    Span {
        inner: Some(ActiveSpan {
            id,
            parent,
            name,
            epoch,
            start: Instant::now(),
        }),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(active) = self.inner.take() else {
            return;
        };
        let nanos = active.start.elapsed().as_nanos();
        let dur_ns = u64::try_from(nanos).unwrap_or(u64::MAX);
        let slow_ns = slow_threshold_ns();
        let slow_path = STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Pop back to (and including) this span; robust against
            // out-of-order drops of sibling guards.
            while let Some((top, _)) = stack.pop() {
                if top == active.id {
                    break;
                }
            }
            // Ancestry path, built only for spans that will warn.
            (slow_ns != 0 && dur_ns >= slow_ns).then(|| {
                let mut path: Vec<&str> = stack.iter().map(|&(_, n)| n).collect();
                path.push(active.name);
                path.join(" > ")
            })
        });
        let thread = THREAD_ORDINAL.with(|t| *t);
        let record = SpanRecord {
            id: active.id,
            parent: active.parent,
            name: active.name,
            nanos,
            thread,
        };
        COLLECTOR
            .lock()
            .expect("span collector poisoned")
            .push(record);
        crate::hist::record(active.name, dur_ns);
        let start_ns = u64::try_from(
            active
                .start
                .saturating_duration_since(active.epoch)
                .as_nanos(),
        )
        .unwrap_or(u64::MAX);
        crate::events::record(crate::events::EventRecord {
            name: active.name,
            thread,
            session: crate::metrics::current_session(),
            start_ns,
            dur_ns,
        });
        if let Some(path) = slow_path {
            crate::warn::warn_limited(
                "slow",
                &format!(
                    "slow span {path}: {} (threshold {})",
                    fmt_ns(nanos),
                    fmt_ns(slow_ns as u128)
                ),
            );
        }
    }
}

/// Drain the collector, returning every finished span.
#[must_use]
pub fn take_spans() -> Vec<SpanRecord> {
    std::mem::take(&mut *COLLECTOR.lock().expect("span collector poisoned"))
}

/// Copy the collector without draining it.
#[must_use]
pub fn snapshot_spans() -> Vec<SpanRecord> {
    COLLECTOR.lock().expect("span collector poisoned").clone()
}

/// Discard all collected spans.
pub fn clear_spans() {
    COLLECTOR.lock().expect("span collector poisoned").clear();
}

/// Aggregated view of same-named sibling spans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// Span name.
    pub name: &'static str,
    /// How many spans were aggregated into this node.
    pub count: u64,
    /// Summed wall-clock nanoseconds.
    pub total_ns: u128,
    /// `total_ns` minus the children's summed `total_ns` (clamped at 0),
    /// so a parent's total always equals `self + Σ children`.
    pub self_ns: u128,
    /// Aggregated child spans, in first-start order.
    pub children: Vec<SpanNode>,
}

/// Build the aggregated span forest from raw records: siblings with the
/// same name merge into one node (count/total accumulate); spans whose
/// parent never finished are treated as roots.
#[must_use]
pub fn aggregate(records: &[SpanRecord]) -> Vec<SpanNode> {
    let finished: HashMap<u64, &SpanRecord> = records.iter().map(|r| (r.id, r)).collect();
    let mut children_of: HashMap<Option<u64>, Vec<&SpanRecord>> = HashMap::new();
    for r in records {
        let key = match r.parent {
            Some(p) if finished.contains_key(&p) => Some(p),
            _ => None,
        };
        children_of.entry(key).or_default().push(r);
    }
    fn level(
        group: &[&SpanRecord],
        children_of: &HashMap<Option<u64>, Vec<&SpanRecord>>,
    ) -> Vec<SpanNode> {
        // group by name, preserving first-start order
        let mut order: Vec<&'static str> = Vec::new();
        let mut by_name: HashMap<&'static str, Vec<&SpanRecord>> = HashMap::new();
        let mut sorted: Vec<&&SpanRecord> = group.iter().collect();
        sorted.sort_by_key(|r| r.id);
        for r in sorted {
            if !by_name.contains_key(r.name) {
                order.push(r.name);
            }
            by_name.entry(r.name).or_default().push(r);
        }
        order
            .into_iter()
            .map(|name| {
                let members = &by_name[name];
                let total_ns: u128 = members.iter().map(|r| r.nanos).sum();
                let mut kids: Vec<&SpanRecord> = Vec::new();
                for m in members {
                    if let Some(c) = children_of.get(&Some(m.id)) {
                        kids.extend(c.iter().copied());
                    }
                }
                let children = level(&kids, children_of);
                let child_total: u128 = children.iter().map(|c| c.total_ns).sum();
                SpanNode {
                    name,
                    count: members.len() as u64,
                    total_ns,
                    self_ns: total_ns.saturating_sub(child_total),
                    children,
                }
            })
            .collect()
    }
    let roots = children_of.get(&None).cloned().unwrap_or_default();
    level(&roots, &children_of)
}

/// Render nanoseconds with an adaptive unit (`1.234s`, `5.678ms`,
/// `9.1µs`, `42ns`) — the formatting `--trace` trees, `profile spans`,
/// and slow-span warnings share.
#[must_use]
pub fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Render records as an indented tree. Same-named siblings aggregate
/// into one line with a `×count`; `self` is total minus children, so
/// every parent's total equals its self time plus its children's totals.
#[must_use]
pub fn render_tree(records: &[SpanRecord]) -> String {
    render_tree_filtered(records, "")
}

/// Subtrees of `forest` rooted at the shallowest nodes whose name
/// contains `filter` (a kept root keeps its whole subtree).
fn filter_forest(forest: &[SpanNode], filter: &str) -> Vec<SpanNode> {
    let mut kept = Vec::new();
    for node in forest {
        if node.name.contains(filter) {
            kept.push(node.clone());
        } else {
            kept.extend(filter_forest(&node.children, filter));
        }
    }
    kept
}

fn count_spans(forest: &[SpanNode]) -> u64 {
    forest
        .iter()
        .map(|n| n.count + count_spans(&n.children))
        .sum()
}

/// Like [`render_tree`], keeping only subtrees rooted at spans whose
/// name contains `filter` (the `--trace-filter` CLI flag). An empty
/// filter keeps the full tree.
#[must_use]
pub fn render_tree_filtered(records: &[SpanRecord], filter: &str) -> String {
    if records.is_empty() {
        return String::from("trace: no spans recorded\n");
    }
    let mut threads: Vec<u64> = records.iter().map(|r| r.thread).collect();
    threads.sort_unstable();
    threads.dedup();
    let mut per_thread: Vec<(u64, Vec<SpanNode>)> = Vec::new();
    let mut total: u64 = 0;
    for &t in &threads {
        let subset: Vec<SpanRecord> = records.iter().filter(|r| r.thread == t).cloned().collect();
        let forest = filter_forest(&aggregate(&subset), filter);
        total += count_spans(&forest);
        if !forest.is_empty() {
            per_thread.push((t, forest));
        }
    }
    if per_thread.is_empty() {
        return format!("trace: no spans matching `{filter}`\n");
    }
    let mut out = format!(
        "trace: {} span{} on {} thread{}\n",
        total,
        if total == 1 { "" } else { "s" },
        per_thread.len(),
        if per_thread.len() == 1 { "" } else { "s" },
    );
    let multi = per_thread.len() > 1;
    for (t, forest) in &per_thread {
        if multi {
            out.push_str(&format!("thread {t}:\n"));
        }
        fn walk(node: &SpanNode, depth: usize, out: &mut String) {
            let indent = "  ".repeat(depth);
            out.push_str(&format!(
                "{indent}- {}  ×{}  total {}  self {}\n",
                node.name,
                node.count,
                fmt_ns(node.total_ns),
                fmt_ns(node.self_ns),
            ));
            for child in &node.children {
                walk(child, depth + 1, out);
            }
        }
        for root in forest {
            walk(root, 0, &mut out);
        }
    }
    out
}

/// Render records as a JSON array of aggregated span nodes:
/// `[{"name": ..., "count": n, "total_ns": n, "self_ns": n,
/// "children": [...]}]`. `indent` is the indentation of the array.
#[must_use]
pub fn spans_to_json(records: &[SpanRecord], indent: usize) -> String {
    fn node_json(node: &SpanNode, indent: usize) -> String {
        let pad = " ".repeat(indent);
        let inner = " ".repeat(indent + 2);
        let mut out = format!(
            "{{\n{inner}\"name\": {},\n{inner}\"count\": {},\n{inner}\"total_ns\": {},\n{inner}\"self_ns\": {}",
            crate::json::quote(node.name),
            node.count,
            node.total_ns,
            node.self_ns,
        );
        if !node.children.is_empty() {
            out.push_str(&format!(",\n{inner}\"children\": ["));
            for (i, c) in node.children.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&node_json(c, indent + 4));
            }
            out.push(']');
        }
        out.push_str(&format!("\n{pad}}}"));
        out
    }
    let forest = aggregate(records);
    let mut out = String::from("[");
    for (i, node) in forest.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&node_json(node, indent + 2));
    }
    out.push(']');
    out
}

/// Flat per-name profile of `records`: the `top` span names ranked by
/// summed **self** time (descending, name ascending on ties), each with
/// count, total, self, and — when a matching histogram entry is in
/// `hists` — p50/p90/p99 latency percentiles. Backs the `profile spans`
/// shell command.
#[must_use]
pub fn render_profile(
    records: &[SpanRecord],
    hists: &[(&'static str, crate::hist::HistSnapshot)],
    top: usize,
) -> String {
    // Flatten the aggregated forest into per-name sums: the same name
    // may appear at several tree positions (and on several threads).
    let mut by_name: HashMap<&'static str, (u64, u128, u128)> = HashMap::new();
    fn walk(node: &SpanNode, by_name: &mut HashMap<&'static str, (u64, u128, u128)>) {
        let entry = by_name.entry(node.name).or_default();
        entry.0 += node.count;
        entry.1 += node.total_ns;
        entry.2 += node.self_ns;
        for c in &node.children {
            walk(c, by_name);
        }
    }
    for node in &aggregate(records) {
        walk(node, &mut by_name);
    }
    let mut rows: Vec<(&'static str, (u64, u128, u128))> = by_name.into_iter().collect();
    rows.sort_by(|a, b| b.1 .2.cmp(&a.1 .2).then(a.0.cmp(b.0)));
    let names = rows.len();
    let shown = top.min(names);
    let mut out = format!(
        "profile: {} span name{}, top {} by self time\n",
        names,
        if names == 1 { "" } else { "s" },
        shown,
    );
    for (name, (count, total_ns, self_ns)) in rows.into_iter().take(top) {
        out.push_str(&format!(
            "- {name}  ×{count}  total {}  self {}",
            fmt_ns(total_ns),
            fmt_ns(self_ns),
        ));
        if let Some((_, h)) = hists.iter().find(|(n, _)| *n == name) {
            out.push_str(&format!(
                "  p50 {}  p90 {}  p99 {}",
                fmt_ns(h.percentile(50) as u128),
                fmt_ns(h.percentile(90) as u128),
                fmt_ns(h.percentile(99) as u128),
            ));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::LOCK;

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = LOCK.lock().unwrap();
        set_trace_enabled(false);
        clear_spans();
        {
            let _s = span("outer");
            let _t = span("inner");
        }
        assert!(take_spans().is_empty());
    }

    #[test]
    fn nesting_and_aggregation_are_consistent() {
        let _guard = LOCK.lock().unwrap();
        set_trace_enabled(true);
        clear_spans();
        {
            let _root = span("root");
            for _ in 0..3 {
                let _child = span("child");
                let _leaf = span("leaf");
            }
            let _other = span("other");
        }
        set_trace_enabled(false);
        let records = take_spans();
        assert_eq!(records.len(), 8);
        let forest = aggregate(&records);
        assert_eq!(forest.len(), 1);
        let root = &forest[0];
        assert_eq!(root.name, "root");
        assert_eq!(root.count, 1);
        let names: Vec<_> = root.children.iter().map(|c| c.name).collect();
        assert_eq!(names, vec!["child", "other"]);
        let child = &root.children[0];
        assert_eq!(child.count, 3);
        assert_eq!(child.children.len(), 1);
        assert_eq!(child.children[0].name, "leaf");
        assert_eq!(child.children[0].count, 3);
        // parent totals always cover their children
        fn check(node: &SpanNode) {
            let child_total: u128 = node.children.iter().map(|c| c.total_ns).sum();
            assert_eq!(node.total_ns, node.self_ns + child_total);
            assert!(node.total_ns >= child_total);
            for c in &node.children {
                check(c);
            }
        }
        check(root);
        let rendered = render_tree(&records);
        assert!(rendered.contains("- root"));
        assert!(rendered.contains("  - child  ×3"));
        let json = spans_to_json(&records, 0);
        assert!(json.contains("\"name\": \"root\""));
        assert!(json.contains("\"count\": 3"));
    }

    #[test]
    fn filtered_tree_keeps_matching_subtrees() {
        let _guard = LOCK.lock().unwrap();
        set_trace_enabled(true);
        clear_spans();
        {
            let _root = span("mapping.evaluate");
            {
                let _c = span("fd.naive");
                let _l = span("ops.join");
            }
            let _o = span("ops.remove_subsumed");
        }
        set_trace_enabled(false);
        let records = take_spans();
        let full = render_tree_filtered(&records, "");
        assert_eq!(full, render_tree(&records));
        let fd = render_tree_filtered(&records, "fd.");
        assert!(fd.contains("- fd.naive"), "{fd}");
        assert!(fd.contains("  - ops.join"), "{fd}"); // subtree kept
        assert!(!fd.contains("mapping.evaluate"), "{fd}");
        assert!(!fd.contains("remove_subsumed"), "{fd}");
        assert!(fd.starts_with("trace: 2 spans"), "{fd}");
        let none = render_tree_filtered(&records, "bogus");
        assert!(none.contains("no spans matching `bogus`"), "{none}");
    }

    #[test]
    fn spans_from_spawned_threads_collect_globally() {
        let _guard = LOCK.lock().unwrap();
        set_trace_enabled(true);
        clear_spans();
        let handles: Vec<_> = (0..2)
            .map(|_| {
                std::thread::spawn(|| {
                    let _s = span("worker");
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        set_trace_enabled(false);
        let records = take_spans();
        assert_eq!(records.len(), 2);
        assert!(records.iter().all(|r| r.name == "worker"));
    }

    #[test]
    fn finished_spans_feed_histograms_and_events() {
        let _guard = LOCK.lock().unwrap();
        set_trace_enabled(true);
        clear_spans();
        crate::hist::clear_histograms();
        crate::events::clear_events();
        {
            let _outer = span("timed.outer");
            std::thread::sleep(std::time::Duration::from_millis(1));
            let _inner = span("timed.inner");
        }
        set_trace_enabled(false);
        let records = take_spans();
        assert_eq!(records.len(), 2);
        let hists = crate::hist::snapshot_histograms();
        let (_, outer) = hists
            .iter()
            .find(|(n, _)| *n == "timed.outer")
            .expect("outer histogram");
        assert_eq!(outer.count, 1);
        assert!(outer.sum_ns >= 1_000_000, "slept 1ms, sum {}", outer.sum_ns);
        assert_eq!(outer.percentile(50), outer.max_ns);
        let events = crate::events::snapshot_events();
        assert_eq!(events.len(), 2);
        let outer_ev = events.iter().find(|e| e.name == "timed.outer").unwrap();
        let inner_ev = events.iter().find(|e| e.name == "timed.inner").unwrap();
        assert!(inner_ev.start_ns >= outer_ev.start_ns);
        assert!(outer_ev.dur_ns >= inner_ev.dur_ns);
        // the profile ranks by self time and shows percentiles
        let profile = render_profile(&records, &hists, 10);
        assert!(
            profile.starts_with("profile: 2 span names, top 2"),
            "{profile}"
        );
        assert!(profile.contains("- timed.outer  ×1"), "{profile}");
        assert!(profile.contains("p50 "), "{profile}");
        let top1 = render_profile(&records, &hists, 1);
        assert!(top1.contains("top 1 by self time"), "{top1}");
        assert_eq!(top1.lines().count(), 2, "{top1}");
        crate::events::clear_events();
        crate::hist::clear_histograms();
    }

    #[test]
    fn profile_ranks_names_by_self_time() {
        let records = vec![
            SpanRecord {
                id: 1,
                parent: None,
                name: "outer",
                nanos: 10_000,
                thread: 0,
            },
            SpanRecord {
                id: 2,
                parent: Some(1),
                name: "inner",
                nanos: 9_000,
                thread: 0,
            },
        ];
        let profile = render_profile(&records, &[], 10);
        // inner's self time (9.0µs) beats outer's (1.0µs)
        assert!(
            profile.contains("- inner  ×1  total 9.0µs  self 9.0µs"),
            "{profile}"
        );
        assert!(
            profile.contains("- outer  ×1  total 10.0µs  self 1.0µs"),
            "{profile}"
        );
        let inner_at = profile.find("- inner").unwrap();
        let outer_at = profile.find("- outer").unwrap();
        assert!(inner_at < outer_at, "{profile}");
    }

    #[test]
    fn slow_spans_warn_with_counts() {
        let _guard = LOCK.lock().unwrap();
        set_trace_enabled(true);
        clear_spans();
        let before = {
            let (p, s) = crate::warn::warn_counts("slow");
            p + s
        };
        set_slow_threshold_ns(1);
        {
            let _outer = span("slowtest.outer");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        set_slow_threshold_ns(0);
        set_trace_enabled(false);
        let _ = take_spans();
        crate::events::clear_events();
        crate::hist::clear_histograms();
        let after = {
            let (p, s) = crate::warn::warn_counts("slow");
            p + s
        };
        assert!(
            after > before,
            "slow span did not warn ({before} -> {after})"
        );
    }
}
