//! Hierarchical span tracing via RAII guards.
//!
//! [`span`] returns a guard; guards opened while another guard is alive
//! on the same thread become its children (a thread-local stack tracks
//! nesting). Finished spans are appended to a thread-safe global
//! collector. The whole subsystem is gated by one relaxed `AtomicBool`:
//! while disabled, [`span`] is a load-and-branch that never reads the
//! clock and its guard's `Drop` does nothing.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);
static COLLECTOR: Mutex<Vec<SpanRecord>> = Mutex::new(Vec::new());

thread_local! {
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    static THREAD_ORDINAL: u64 = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
}

/// Turn tracing on or off (off by default).
pub fn set_trace_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether tracing is currently on.
#[must_use]
pub fn trace_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// One finished span.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Unique id, monotonically increasing in start order.
    pub id: u64,
    /// Id of the enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Static span name (dotted, e.g. `fd.naive`).
    pub name: &'static str,
    /// Wall-clock duration in nanoseconds.
    pub nanos: u128,
    /// Ordinal of the thread the span ran on.
    pub thread: u64,
}

/// RAII guard for one span; the span finishes when the guard drops.
#[must_use = "a span guard measures until it is dropped"]
pub struct Span {
    inner: Option<ActiveSpan>,
}

struct ActiveSpan {
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    start: Instant,
}

/// Open a span. While tracing is disabled this is one relaxed atomic
/// load and returns an inert guard.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !trace_enabled() {
        return Span { inner: None };
    }
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let parent = STACK.with(|s| {
        let mut stack = s.borrow_mut();
        let parent = stack.last().copied();
        stack.push(id);
        parent
    });
    Span {
        inner: Some(ActiveSpan {
            id,
            parent,
            name,
            start: Instant::now(),
        }),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(active) = self.inner.take() else {
            return;
        };
        let nanos = active.start.elapsed().as_nanos();
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Pop back to (and including) this span; robust against
            // out-of-order drops of sibling guards.
            while let Some(top) = stack.pop() {
                if top == active.id {
                    break;
                }
            }
        });
        let record = SpanRecord {
            id: active.id,
            parent: active.parent,
            name: active.name,
            nanos,
            thread: THREAD_ORDINAL.with(|t| *t),
        };
        COLLECTOR
            .lock()
            .expect("span collector poisoned")
            .push(record);
    }
}

/// Drain the collector, returning every finished span.
#[must_use]
pub fn take_spans() -> Vec<SpanRecord> {
    std::mem::take(&mut *COLLECTOR.lock().expect("span collector poisoned"))
}

/// Copy the collector without draining it.
#[must_use]
pub fn snapshot_spans() -> Vec<SpanRecord> {
    COLLECTOR.lock().expect("span collector poisoned").clone()
}

/// Discard all collected spans.
pub fn clear_spans() {
    COLLECTOR.lock().expect("span collector poisoned").clear();
}

/// Aggregated view of same-named sibling spans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// Span name.
    pub name: &'static str,
    /// How many spans were aggregated into this node.
    pub count: u64,
    /// Summed wall-clock nanoseconds.
    pub total_ns: u128,
    /// `total_ns` minus the children's summed `total_ns` (clamped at 0),
    /// so a parent's total always equals `self + Σ children`.
    pub self_ns: u128,
    /// Aggregated child spans, in first-start order.
    pub children: Vec<SpanNode>,
}

/// Build the aggregated span forest from raw records: siblings with the
/// same name merge into one node (count/total accumulate); spans whose
/// parent never finished are treated as roots.
#[must_use]
pub fn aggregate(records: &[SpanRecord]) -> Vec<SpanNode> {
    let finished: HashMap<u64, &SpanRecord> = records.iter().map(|r| (r.id, r)).collect();
    let mut children_of: HashMap<Option<u64>, Vec<&SpanRecord>> = HashMap::new();
    for r in records {
        let key = match r.parent {
            Some(p) if finished.contains_key(&p) => Some(p),
            _ => None,
        };
        children_of.entry(key).or_default().push(r);
    }
    fn level(
        group: &[&SpanRecord],
        children_of: &HashMap<Option<u64>, Vec<&SpanRecord>>,
    ) -> Vec<SpanNode> {
        // group by name, preserving first-start order
        let mut order: Vec<&'static str> = Vec::new();
        let mut by_name: HashMap<&'static str, Vec<&SpanRecord>> = HashMap::new();
        let mut sorted: Vec<&&SpanRecord> = group.iter().collect();
        sorted.sort_by_key(|r| r.id);
        for r in sorted {
            if !by_name.contains_key(r.name) {
                order.push(r.name);
            }
            by_name.entry(r.name).or_default().push(r);
        }
        order
            .into_iter()
            .map(|name| {
                let members = &by_name[name];
                let total_ns: u128 = members.iter().map(|r| r.nanos).sum();
                let mut kids: Vec<&SpanRecord> = Vec::new();
                for m in members {
                    if let Some(c) = children_of.get(&Some(m.id)) {
                        kids.extend(c.iter().copied());
                    }
                }
                let children = level(&kids, children_of);
                let child_total: u128 = children.iter().map(|c| c.total_ns).sum();
                SpanNode {
                    name,
                    count: members.len() as u64,
                    total_ns,
                    self_ns: total_ns.saturating_sub(child_total),
                    children,
                }
            })
            .collect()
    }
    let roots = children_of.get(&None).cloned().unwrap_or_default();
    level(&roots, &children_of)
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Render records as an indented tree. Same-named siblings aggregate
/// into one line with a `×count`; `self` is total minus children, so
/// every parent's total equals its self time plus its children's totals.
#[must_use]
pub fn render_tree(records: &[SpanRecord]) -> String {
    render_tree_filtered(records, "")
}

/// Subtrees of `forest` rooted at the shallowest nodes whose name
/// contains `filter` (a kept root keeps its whole subtree).
fn filter_forest(forest: &[SpanNode], filter: &str) -> Vec<SpanNode> {
    let mut kept = Vec::new();
    for node in forest {
        if node.name.contains(filter) {
            kept.push(node.clone());
        } else {
            kept.extend(filter_forest(&node.children, filter));
        }
    }
    kept
}

fn count_spans(forest: &[SpanNode]) -> u64 {
    forest
        .iter()
        .map(|n| n.count + count_spans(&n.children))
        .sum()
}

/// Like [`render_tree`], keeping only subtrees rooted at spans whose
/// name contains `filter` (the `--trace-filter` CLI flag). An empty
/// filter keeps the full tree.
#[must_use]
pub fn render_tree_filtered(records: &[SpanRecord], filter: &str) -> String {
    if records.is_empty() {
        return String::from("trace: no spans recorded\n");
    }
    let mut threads: Vec<u64> = records.iter().map(|r| r.thread).collect();
    threads.sort_unstable();
    threads.dedup();
    let mut per_thread: Vec<(u64, Vec<SpanNode>)> = Vec::new();
    let mut total: u64 = 0;
    for &t in &threads {
        let subset: Vec<SpanRecord> = records.iter().filter(|r| r.thread == t).cloned().collect();
        let forest = filter_forest(&aggregate(&subset), filter);
        total += count_spans(&forest);
        if !forest.is_empty() {
            per_thread.push((t, forest));
        }
    }
    if per_thread.is_empty() {
        return format!("trace: no spans matching `{filter}`\n");
    }
    let mut out = format!(
        "trace: {} span{} on {} thread{}\n",
        total,
        if total == 1 { "" } else { "s" },
        per_thread.len(),
        if per_thread.len() == 1 { "" } else { "s" },
    );
    let multi = per_thread.len() > 1;
    for (t, forest) in &per_thread {
        if multi {
            out.push_str(&format!("thread {t}:\n"));
        }
        fn walk(node: &SpanNode, depth: usize, out: &mut String) {
            let indent = "  ".repeat(depth);
            out.push_str(&format!(
                "{indent}- {}  ×{}  total {}  self {}\n",
                node.name,
                node.count,
                fmt_ns(node.total_ns),
                fmt_ns(node.self_ns),
            ));
            for child in &node.children {
                walk(child, depth + 1, out);
            }
        }
        for root in forest {
            walk(root, 0, &mut out);
        }
    }
    out
}

/// Render records as a JSON array of aggregated span nodes:
/// `[{"name": ..., "count": n, "total_ns": n, "self_ns": n,
/// "children": [...]}]`. `indent` is the indentation of the array.
#[must_use]
pub fn spans_to_json(records: &[SpanRecord], indent: usize) -> String {
    fn node_json(node: &SpanNode, indent: usize) -> String {
        let pad = " ".repeat(indent);
        let inner = " ".repeat(indent + 2);
        let mut out = format!(
            "{{\n{inner}\"name\": {},\n{inner}\"count\": {},\n{inner}\"total_ns\": {},\n{inner}\"self_ns\": {}",
            crate::json::quote(node.name),
            node.count,
            node.total_ns,
            node.self_ns,
        );
        if !node.children.is_empty() {
            out.push_str(&format!(",\n{inner}\"children\": ["));
            for (i, c) in node.children.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&node_json(c, indent + 4));
            }
            out.push(']');
        }
        out.push_str(&format!("\n{pad}}}"));
        out
    }
    let forest = aggregate(records);
    let mut out = String::from("[");
    for (i, node) in forest.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&node_json(node, indent + 2));
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = LOCK.lock().unwrap();
        set_trace_enabled(false);
        clear_spans();
        {
            let _s = span("outer");
            let _t = span("inner");
        }
        assert!(take_spans().is_empty());
    }

    #[test]
    fn nesting_and_aggregation_are_consistent() {
        let _guard = LOCK.lock().unwrap();
        set_trace_enabled(true);
        clear_spans();
        {
            let _root = span("root");
            for _ in 0..3 {
                let _child = span("child");
                let _leaf = span("leaf");
            }
            let _other = span("other");
        }
        set_trace_enabled(false);
        let records = take_spans();
        assert_eq!(records.len(), 8);
        let forest = aggregate(&records);
        assert_eq!(forest.len(), 1);
        let root = &forest[0];
        assert_eq!(root.name, "root");
        assert_eq!(root.count, 1);
        let names: Vec<_> = root.children.iter().map(|c| c.name).collect();
        assert_eq!(names, vec!["child", "other"]);
        let child = &root.children[0];
        assert_eq!(child.count, 3);
        assert_eq!(child.children.len(), 1);
        assert_eq!(child.children[0].name, "leaf");
        assert_eq!(child.children[0].count, 3);
        // parent totals always cover their children
        fn check(node: &SpanNode) {
            let child_total: u128 = node.children.iter().map(|c| c.total_ns).sum();
            assert_eq!(node.total_ns, node.self_ns + child_total);
            assert!(node.total_ns >= child_total);
            for c in &node.children {
                check(c);
            }
        }
        check(root);
        let rendered = render_tree(&records);
        assert!(rendered.contains("- root"));
        assert!(rendered.contains("  - child  ×3"));
        let json = spans_to_json(&records, 0);
        assert!(json.contains("\"name\": \"root\""));
        assert!(json.contains("\"count\": 3"));
    }

    #[test]
    fn filtered_tree_keeps_matching_subtrees() {
        let _guard = LOCK.lock().unwrap();
        set_trace_enabled(true);
        clear_spans();
        {
            let _root = span("mapping.evaluate");
            {
                let _c = span("fd.naive");
                let _l = span("ops.join");
            }
            let _o = span("ops.remove_subsumed");
        }
        set_trace_enabled(false);
        let records = take_spans();
        let full = render_tree_filtered(&records, "");
        assert_eq!(full, render_tree(&records));
        let fd = render_tree_filtered(&records, "fd.");
        assert!(fd.contains("- fd.naive"), "{fd}");
        assert!(fd.contains("  - ops.join"), "{fd}"); // subtree kept
        assert!(!fd.contains("mapping.evaluate"), "{fd}");
        assert!(!fd.contains("remove_subsumed"), "{fd}");
        assert!(fd.starts_with("trace: 2 spans"), "{fd}");
        let none = render_tree_filtered(&records, "bogus");
        assert!(none.contains("no spans matching `bogus`"), "{none}");
    }

    #[test]
    fn spans_from_spawned_threads_collect_globally() {
        let _guard = LOCK.lock().unwrap();
        set_trace_enabled(true);
        clear_spans();
        let handles: Vec<_> = (0..2)
            .map(|_| {
                std::thread::spawn(|| {
                    let _s = span("worker");
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        set_trace_enabled(false);
        let records = take_spans();
        assert_eq!(records.len(), 2);
        assert!(records.iter().all(|r| r.name == "worker"));
    }
}
