//! # clio-obs — observability for the Clio engine
//!
//! A **std-only** (zero external dependencies) observability layer with
//! two halves:
//!
//! * [`metrics`] — a registry of named **monotonic counters** for engine
//!   work units (tuples scanned, join probes, subsumption comparisons,
//!   …). Counters are global relaxed `AtomicU64`s behind a single
//!   relaxed `AtomicBool`; when disabled, every instrumentation site
//!   costs one atomic load and a branch.
//! * [`trace`] — hierarchical **span tracing** via RAII guards. Spans
//!   nest through a thread-local stack and finished spans land in a
//!   thread-safe global collector; the whole subsystem is gated by one
//!   relaxed `AtomicBool` so disabled tracing is a load-and-branch with
//!   no clock reads.
//!
//! Hot loops are expected to accumulate counts in locals and flush once
//! per operation via [`metrics::add`]; see `clio-relational`'s
//! `ops/join.rs` for the idiom.
//!
//! ## Reports
//!
//! [`report_json`] renders the counter snapshot (and the span tree, when
//! any spans were recorded) as a JSON document; the schema is documented
//! in `docs/observability.md`. [`trace::render_tree`] renders finished
//! spans as an indented human-readable tree whose per-span totals sum
//! consistently with their parents (`self = total − Σ children`).

#![warn(missing_docs)]

pub mod events;
pub mod hist;
pub mod json;
pub mod metrics;
pub mod trace;
pub mod warn;

pub use events::{chrome_trace_jsonl, clear_events, snapshot_events, take_events, EventRecord};
pub use hist::{clear_histograms, snapshot_histograms, HistSnapshot};
pub use metrics::{
    add, incr, metrics_enabled, reset_metrics, set_metrics_enabled, snapshot, sub, Counter,
};
pub use trace::{
    clear_spans, fmt_ns, render_profile, render_tree_filtered, set_slow_threshold_ns,
    set_trace_enabled, slow_threshold_ns, snapshot_spans, span, take_spans, trace_enabled, Span,
};
pub use warn::{reset_warnings, warn_counts, warn_limited, warn_summary};

/// Enable or disable both halves at once.
pub fn set_enabled(on: bool) {
    metrics::set_metrics_enabled(on);
    trace::set_trace_enabled(on);
}

/// One JSON document with the current counter snapshot, per-session
/// counter tables (when any session labels recorded work — see
/// [`metrics::with_session`]), per-span-name latency histograms and
/// their per-session mirrors (when any durations were recorded — i.e.
/// under tracing), and the aggregated span tree (when any spans have
/// been collected):
///
/// ```json
/// {"counters": {...}, "sessions": {"0": {...}},
///  "histograms": {...}, "session_histograms": {"0": {...}},
///  "spans": [...]}
/// ```
///
/// The timing keys are **omitted** when empty, so untraced runs keep
/// producing byte-identical counter documents (the golden-gate
/// invariant in `scripts/verify.sh`).
#[must_use]
pub fn report_json() -> String {
    let snap = metrics::snapshot();
    let spans = trace::snapshot_spans();
    let mut out = String::from("{\n  \"counters\": ");
    out.push_str(&snap.to_json_object(2));
    let labels = metrics::session_labels();
    if !labels.is_empty() {
        out.push_str(",\n  \"sessions\": {");
        for (i, label) in labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let table = metrics::session_snapshot(*label).unwrap_or_else(metrics::snapshot);
            out.push_str(&format!(
                "\n    {}: ",
                json::quote(&metrics::session_display(*label))
            ));
            out.push_str(&table.to_json_object(4));
        }
        out.push_str("\n  }");
    }
    let hists = hist::snapshot_histograms();
    if !hists.is_empty() {
        out.push_str(",\n  \"histograms\": ");
        out.push_str(&hist::hists_to_json(&hists, 2));
    }
    let session_hists = hist::session_histograms();
    if !session_hists.is_empty() {
        out.push_str(",\n  \"session_histograms\": {");
        for (i, (label, entries)) in session_hists.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {}: ",
                json::quote(&metrics::session_display(*label))
            ));
            out.push_str(&hist::hists_to_json(entries, 4));
        }
        out.push_str("\n  }");
    }
    if !spans.is_empty() {
        out.push_str(",\n  \"spans\": ");
        out.push_str(&trace::spans_to_json(&spans, 2));
    }
    out.push_str("\n}\n");
    out
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Serializes tests that toggle the global trace/histogram/event state.
    pub static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
}
