//! Rate-limited stderr warnings.
//!
//! Degraded-mode events (a corrupt cache file, a slow span) warn once
//! per occurrence — but a directory of ten thousand corrupt files must
//! not emit ten thousand lines. [`warn_limited`] prints the first
//! [`WARN_LIMIT`] messages of each category verbatim (prefixed
//! `clio: `), announces suppression once, then counts silently;
//! [`warn_summary`] renders the suppressed totals for end-of-process
//! reporting.

use std::collections::BTreeMap;
use std::sync::{Mutex, PoisonError};

/// Messages printed per category before suppression kicks in.
pub const WARN_LIMIT: u64 = 5;

#[derive(Debug, Default, Clone, Copy)]
struct Tally {
    printed: u64,
    suppressed: u64,
}

static CATEGORIES: Mutex<BTreeMap<&'static str, Tally>> = Mutex::new(BTreeMap::new());

fn lock() -> std::sync::MutexGuard<'static, BTreeMap<&'static str, Tally>> {
    CATEGORIES.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Print `clio: {message}` to stderr — but only for the first
/// [`WARN_LIMIT`] calls per `category`. The call after the limit prints
/// a one-line suppression notice; every later call just counts (see
/// [`warn_summary`]).
pub fn warn_limited(category: &'static str, message: &str) {
    let mut tallies = lock();
    let tally = tallies.entry(category).or_default();
    if tally.printed < WARN_LIMIT {
        tally.printed += 1;
        drop(tallies);
        eprintln!("clio: {message}");
    } else {
        tally.suppressed += 1;
        let announce = tally.suppressed == 1;
        drop(tallies);
        if announce {
            eprintln!(
                "clio: further `{category}` warnings suppressed after {WARN_LIMIT} (totals on exit)"
            );
        }
    }
}

/// `(printed, suppressed)` tallies for one category.
#[must_use]
pub fn warn_counts(category: &str) -> (u64, u64) {
    lock()
        .get(category)
        .map(|t| (t.printed, t.suppressed))
        .unwrap_or((0, 0))
}

/// One line per category with suppressed warnings (e.g.
/// `clio: 12 \`cache.load\` warnings suppressed (5 shown)`), or `None`
/// when nothing was suppressed.
#[must_use]
pub fn warn_summary() -> Option<String> {
    let tallies = lock();
    let mut out = String::new();
    for (category, t) in tallies.iter() {
        if t.suppressed > 0 {
            out.push_str(&format!(
                "clio: {} `{category}` warning{} suppressed ({} shown)\n",
                t.suppressed,
                if t.suppressed == 1 { "" } else { "s" },
                t.printed,
            ));
        }
    }
    (!out.is_empty()).then_some(out)
}

/// Zero all tallies (tests; a fresh shell session).
pub fn reset_warnings() {
    lock().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    // The tally table is global and other test binaries' categories may
    // interleave; use a category unique to this test and assert on its
    // tallies only.
    #[test]
    fn limit_then_suppress_then_summarize() {
        const CAT: &str = "warn.test.limit";
        let (p0, s0) = warn_counts(CAT);
        assert_eq!((p0, s0), (0, 0));
        for i in 0..(WARN_LIMIT + 7) {
            warn_limited(CAT, &format!("event {i}"));
        }
        let (printed, suppressed) = warn_counts(CAT);
        assert_eq!(printed, WARN_LIMIT);
        assert_eq!(suppressed, 7);
        let summary = warn_summary().expect("suppressed warnings must summarize");
        assert!(
            summary.contains("7 `warn.test.limit` warnings suppressed (5 shown)"),
            "{summary}"
        );
    }

    #[test]
    fn summary_is_none_without_suppression() {
        const CAT: &str = "warn.test.quiet";
        warn_limited(CAT, "once");
        let (printed, suppressed) = warn_counts(CAT);
        assert_eq!((printed, suppressed), (1, 0));
        if let Some(summary) = warn_summary() {
            // other categories may have suppressed; ours must not appear
            assert!(!summary.contains("warn.test.quiet"), "{summary}");
        }
    }
}
