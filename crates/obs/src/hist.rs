//! Log-bucketed latency histograms keyed by span name.
//!
//! Every finished span (see [`crate::trace::span`]) records its
//! wall-clock duration here while tracing is enabled. Buckets are
//! **log-linear**: 8 sub-buckets per power-of-two octave, so a recorded
//! value's bucket upper bound overstates it by at most 2⁻³ = 12.5%.
//! Values below 8 ns land in exact singleton buckets. `count`, `sum`,
//! `min`, and `max` are exact; percentiles are bucket upper bounds
//! clamped into `[min, max]`.
//!
//! Like the counter registry, histograms mirror into a per-session
//! table when the recording thread carries a session label (see
//! [`crate::metrics::with_session`]), which is how batch runs report
//! per-session latency distributions.

use std::collections::BTreeMap;
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

/// Sub-bucket resolution: 2³ = 8 sub-buckets per octave.
const SUB_BITS: u32 = 3;
const SUBS: usize = 1 << SUB_BITS;

/// Map a nanosecond value to its bucket index (monotonic in the value).
fn bucket_index(v: u64) -> usize {
    if v < SUBS as u64 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let sub = ((v >> (msb - SUB_BITS)) & (SUBS as u64 - 1)) as usize;
        ((msb - SUB_BITS) as usize) * SUBS + sub + SUBS
    }
}

/// Largest value that maps to bucket `i` (inverse of [`bucket_index`]).
fn bucket_upper(i: usize) -> u64 {
    if i < 2 * SUBS {
        i as u64
    } else {
        let msb = (i / SUBS + SUB_BITS as usize - 1) as u32;
        let sub = (i % SUBS) as u128;
        let upper = (1u128 << msb) + ((sub + 1) << (msb - SUB_BITS)) - 1;
        upper.min(u64::MAX as u128) as u64
    }
}

#[derive(Debug, Default, Clone)]
struct Hist {
    count: u64,
    sum_ns: u64,
    min_ns: u64,
    max_ns: u64,
    buckets: BTreeMap<usize, u64>,
}

impl Hist {
    fn observe(&mut self, ns: u64) {
        if self.count == 0 || ns < self.min_ns {
            self.min_ns = ns;
        }
        if ns > self.max_ns {
            self.max_ns = ns;
        }
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
        *self.buckets.entry(bucket_index(ns)).or_default() += 1;
    }

    fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            count: self.count,
            sum_ns: self.sum_ns,
            min_ns: self.min_ns,
            max_ns: self.max_ns,
            buckets: self.buckets.iter().map(|(&i, &c)| (i, c)).collect(),
        }
    }
}

/// Immutable copy of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Number of recorded durations.
    pub count: u64,
    /// Exact sum of recorded nanoseconds (saturating).
    pub sum_ns: u64,
    /// Exact smallest recorded value.
    pub min_ns: u64,
    /// Exact largest recorded value.
    pub max_ns: u64,
    buckets: Vec<(usize, u64)>,
}

impl HistSnapshot {
    /// The `p`-th percentile (`0 < p <= 100`) as the upper bound of the
    /// bucket holding the rank-⌈count·p/100⌉ value, clamped into
    /// `[min_ns, max_ns]` — so the reported value overstates the true
    /// percentile by at most 12.5%. Returns 0 for an empty histogram.
    #[must_use]
    pub fn percentile(&self, p: u8) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as u128 * p as u128).div_ceil(100) as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for &(i, c) in &self.buckets {
            cum += c;
            if cum >= rank {
                return bucket_upper(i).clamp(self.min_ns, self.max_ns);
            }
        }
        self.max_ns
    }
}

type Table = BTreeMap<&'static str, Hist>;

static GLOBAL: Mutex<Table> = Mutex::new(BTreeMap::new());
static SESSIONS: Mutex<BTreeMap<u64, Table>> = Mutex::new(BTreeMap::new());

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Record one duration under `name`, mirroring into the current
/// session's table when the thread carries a session label.
/// Unconditional — callers gate on tracing via [`start`].
pub fn record(name: &'static str, ns: u64) {
    lock(&GLOBAL).entry(name).or_default().observe(ns);
    if let Some(label) = crate::metrics::current_session() {
        lock(&SESSIONS)
            .entry(label)
            .or_default()
            .entry(name)
            .or_default()
            .observe(ns);
    }
}

/// Start a timing measurement: `Some(now)` while tracing is enabled,
/// `None` (no clock read) otherwise. Pair with [`finish`].
#[must_use]
pub fn start() -> Option<Instant> {
    crate::trace::trace_enabled().then(Instant::now)
}

/// Finish a measurement started with [`start`], recording the elapsed
/// time under `name`. A `None` timer (tracing was off) records nothing.
pub fn finish(name: &'static str, timer: Option<Instant>) {
    if let Some(t) = timer {
        record(
            name,
            u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX),
        );
    }
}

/// Snapshot every global histogram, sorted by span name.
#[must_use]
pub fn snapshot_histograms() -> Vec<(&'static str, HistSnapshot)> {
    lock(&GLOBAL)
        .iter()
        .map(|(&n, h)| (n, h.snapshot()))
        .collect()
}

/// Snapshot every per-session histogram table, sorted by session label.
#[must_use]
pub fn session_histograms() -> Vec<(u64, Vec<(&'static str, HistSnapshot)>)> {
    lock(&SESSIONS)
        .iter()
        .map(|(&label, t)| (label, t.iter().map(|(&n, h)| (n, h.snapshot())).collect()))
        .collect()
}

/// Histograms for the calling context: the current session's table when
/// the thread carries a session label, the global table otherwise.
#[must_use]
pub fn context_histograms() -> Vec<(&'static str, HistSnapshot)> {
    match crate::metrics::current_session() {
        Some(label) => lock(&SESSIONS)
            .get(&label)
            .map(|t| t.iter().map(|(&n, h)| (n, h.snapshot())).collect())
            .unwrap_or_default(),
        None => snapshot_histograms(),
    }
}

/// Discard all histograms (global and per-session).
pub fn clear_histograms() {
    lock(&GLOBAL).clear();
    lock(&SESSIONS).clear();
}

/// Render histogram entries as a JSON object keyed by span name, each
/// value `{"count": n, "sum_ns": n, "min_ns": n, "max_ns": n,
/// "p50_ns": n, "p90_ns": n, "p99_ns": n}`. `indent` is the indentation
/// of the object braces; one name per line.
#[must_use]
pub fn hists_to_json(entries: &[(&str, HistSnapshot)], indent: usize) -> String {
    let pad = " ".repeat(indent);
    let inner = " ".repeat(indent + 2);
    let mut out = String::from("{");
    for (i, (name, h)) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n{inner}{}: {{\"count\": {}, \"sum_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}}}",
            crate::json::quote(name),
            h.count,
            h.sum_ns,
            h.min_ns,
            h.max_ns,
            h.percentile(50),
            h.percentile(90),
            h.percentile(99),
        ));
    }
    if !entries.is_empty() {
        out.push('\n');
        out.push_str(&pad);
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotonic_and_exact_below_two_octaves() {
        for v in 0..(2 * SUBS as u64) {
            assert_eq!(bucket_index(v), v as usize, "v={v}");
            assert_eq!(bucket_upper(v as usize), v, "v={v}");
        }
        let mut last = 0;
        for v in [0u64, 1, 7, 8, 15, 16, 17, 100, 1000, 1 << 20, u64::MAX] {
            let i = bucket_index(v);
            assert!(i >= last, "index not monotonic at v={v}");
            last = i;
            assert!(bucket_upper(i) >= v, "upper bound below value at v={v}");
        }
    }

    #[test]
    fn bucket_upper_bounds_error_at_twelve_point_five_percent() {
        for v in [100u64, 999, 12_345, 1 << 30, 987_654_321] {
            let ub = bucket_upper(bucket_index(v));
            assert!(ub >= v);
            assert!(
                (ub - v) as f64 <= v as f64 * 0.125,
                "v={v} ub={ub}: error above 12.5%"
            );
        }
    }

    #[test]
    fn percentiles_track_recorded_values() {
        let mut h = Hist::default();
        for v in 1..=100u64 {
            h.observe(v * 1000);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.min_ns, 1000);
        assert_eq!(s.max_ns, 100_000);
        assert_eq!(s.sum_ns, (1..=100u64).map(|v| v * 1000).sum::<u64>());
        let p50 = s.percentile(50);
        assert!((50_000..=56_250).contains(&p50), "p50={p50}");
        let p90 = s.percentile(90);
        assert!((90_000..=101_250).contains(&p90), "p90={p90}");
        assert!(p90 <= s.max_ns);
        assert_eq!(s.percentile(100), s.max_ns);
    }

    #[test]
    fn single_observation_pins_all_percentiles() {
        let mut h = Hist::default();
        h.observe(42_000);
        let s = h.snapshot();
        for p in [1, 50, 90, 99, 100] {
            assert_eq!(s.percentile(p), 42_000, "p={p}");
        }
    }

    #[test]
    fn empty_histogram_percentile_is_zero() {
        let s = Hist::default().snapshot();
        assert_eq!(s.percentile(50), 0);
    }

    #[test]
    fn json_rendering_lists_all_fields() {
        let mut h = Hist::default();
        h.observe(10);
        h.observe(20);
        let entries = vec![("x.y", h.snapshot())];
        let json = hists_to_json(&entries, 0);
        for field in [
            "\"x.y\"",
            "\"count\": 2",
            "\"sum_ns\": 30",
            "\"min_ns\": 10",
            "\"max_ns\": 20",
            "\"p50_ns\"",
            "\"p90_ns\"",
            "\"p99_ns\"",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
        assert_eq!(hists_to_json(&[], 0), "{}");
    }
}
