//! Bounded ring buffer of completed spans, exportable as Chrome trace
//! events.
//!
//! Every span finished while tracing is enabled is appended here as an
//! [`EventRecord`]: name, thread ordinal, session label, start offset
//! from a process-wide epoch, and duration. The buffer is bounded
//! (65 536 events); once full, the oldest events are overwritten and a
//! dropped-event counter increments, so a long run cannot grow memory
//! without bound.
//!
//! [`chrome_trace_jsonl`] renders events in the Chrome trace-event
//! format (one complete `"ph": "X"` event per line), loadable in
//! `chrome://tracing` or <https://ui.perfetto.dev> — see
//! `docs/observability.md` for the workflow.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Instant;

/// Ring capacity: oldest events are dropped beyond this.
pub const EVENT_CAPACITY: usize = 65_536;

/// One completed span, positioned on the process timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRecord {
    /// Static span name (dotted, e.g. `fd.naive`).
    pub name: &'static str,
    /// Ordinal of the thread the span ran on.
    pub thread: u64,
    /// Session label carried by the recording thread, if any.
    pub session: Option<u64>,
    /// Span start, nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
}

static RING: Mutex<VecDeque<EventRecord>> = Mutex::new(VecDeque::new());
static DROPPED: AtomicU64 = AtomicU64::new(0);
static EPOCH: OnceLock<Instant> = OnceLock::new();

fn lock() -> std::sync::MutexGuard<'static, VecDeque<EventRecord>> {
    RING.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The process trace epoch, initialized on first use. [`crate::span`]
/// touches this before reading the span's start time, so every event's
/// `start_ns` offset is non-negative.
pub fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// Append one event, dropping the oldest when the ring is full.
pub fn record(event: EventRecord) {
    let mut ring = lock();
    if ring.len() >= EVENT_CAPACITY {
        ring.pop_front();
        DROPPED.fetch_add(1, Ordering::Relaxed);
    }
    ring.push_back(event);
}

/// Drain the ring, returning the buffered events (oldest first) and how
/// many were dropped to the capacity bound since the last clear.
#[must_use]
pub fn take_events() -> (Vec<EventRecord>, u64) {
    let events = lock().drain(..).collect();
    (events, DROPPED.swap(0, Ordering::Relaxed))
}

/// Copy the ring without draining it (oldest first).
#[must_use]
pub fn snapshot_events() -> Vec<EventRecord> {
    lock().iter().cloned().collect()
}

/// Discard all buffered events and reset the dropped-event counter.
pub fn clear_events() {
    lock().clear();
    DROPPED.store(0, Ordering::Relaxed);
}

/// Nanoseconds rendered as fractional microseconds (`1234567` →
/// `1234.567`), the unit Chrome trace timestamps use.
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

/// Render events as Chrome trace-event JSONL: one complete (`"ph":
/// "X"`) event object per line, timestamps and durations in
/// microseconds. Load the file in `chrome://tracing` or Perfetto.
#[must_use]
pub fn chrome_trace_jsonl(events: &[EventRecord]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&format!(
            "{{\"ph\": \"X\", \"pid\": 1, \"tid\": {}, \"ts\": {}, \"dur\": {}, \"name\": {}",
            e.thread,
            us(e.start_ns),
            us(e.dur_ns),
            crate::json::quote(e.name),
        ));
        if let Some(session) = e.session {
            out.push_str(&format!(", \"args\": {{\"session\": {session}}}"));
        }
        out.push_str("}\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &'static str, start_ns: u64) -> EventRecord {
        EventRecord {
            name,
            thread: 0,
            session: None,
            start_ns,
            dur_ns: 500,
        }
    }

    #[test]
    fn jsonl_renders_one_complete_event_per_line() {
        let events = vec![
            EventRecord {
                name: "fd.naive",
                thread: 2,
                session: Some(1),
                start_ns: 1_234_567,
                dur_ns: 89_012,
            },
            ev("ops.join", 42),
        ];
        let jsonl = chrome_trace_jsonl(&events);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"ph\": \"X\""));
        assert!(lines[0].contains("\"tid\": 2"));
        assert!(lines[0].contains("\"ts\": 1234.567"));
        assert!(lines[0].contains("\"dur\": 89.012"));
        assert!(lines[0].contains("\"name\": \"fd.naive\""));
        assert!(lines[0].contains("\"args\": {\"session\": 1}"));
        assert!(lines[1].contains("\"ts\": 0.042"));
        assert!(!lines[1].contains("args"));
    }

    #[test]
    fn ring_drops_oldest_beyond_capacity() {
        // The ring is global: serialize against the span tests (which
        // also record events) and exercise the bound via the public API.
        let _guard = crate::testutil::LOCK.lock().unwrap();
        crate::trace::set_trace_enabled(false);
        clear_events();
        for i in 0..(EVENT_CAPACITY as u64 + 10) {
            record(ev("x", i));
        }
        let (events, dropped) = take_events();
        assert_eq!(events.len(), EVENT_CAPACITY);
        assert_eq!(dropped, 10);
        assert_eq!(events[0].start_ns, 10); // oldest 10 gone
        let (empty, zero) = take_events();
        assert!(empty.is_empty());
        assert_eq!(zero, 0);
    }
}
