//! Canonical printer: render a [`Mapping`] as `MAP ...` statement text.
//!
//! The output always parses back to an equal mapping
//! (`parse_map(&print_mapping(&m)) == m`). Identifiers are quoted under
//! the expression lexer's rules *plus* the language's own clause
//! keywords: a relation named `from` prints as `"from"` so it cannot be
//! read as a clause boundary.

use clio_core::prelude::{Mapping, Node};
use clio_relational::schema::{format_ident, ident_needs_quoting};

/// The language's keywords, quoted by [`lang_ident`] in addition to the
/// expression language's own.
const KEYWORDS: [&str; 10] = [
    "MAP", "FROM", "JOIN", "ON", "WHERE", "SELECT", "AS", "CODE", "SOURCE", "TARGET",
];

/// Render an identifier so the statement parser reads it back verbatim:
/// like [`format_ident`], but clause keywords are also quoted.
#[must_use]
pub fn lang_ident(name: &str) -> String {
    if !ident_needs_quoting(name) && KEYWORDS.iter().any(|k| k.eq_ignore_ascii_case(name)) {
        format!("\"{}\"", name.replace('"', "\"\""))
    } else {
        format_ident(name)
    }
}

/// Serialize a mapping as canonical `MAP` statement text: one clause
/// per line, in `MAP`, `FROM`, `JOIN`, `WHERE SOURCE`, `WHERE TARGET`,
/// `SELECT` order.
#[must_use]
pub fn print_mapping(m: &Mapping) -> String {
    let mut out = String::new();
    out.push_str(&format!("MAP {} (", lang_ident(m.target.name())));
    for (i, a) in m.target.attrs().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("{} {}", lang_ident(&a.name), a.ty));
        if a.not_null {
            out.push_str(" not null");
        }
    }
    out.push_str(")\n");
    if m.graph.node_count() > 0 {
        let items: Vec<String> = m.graph.nodes().iter().map(node_item).collect();
        out.push_str(&format!("FROM {}\n", items.join(", ")));
    }
    for e in m.graph.edges() {
        out.push_str(&format!(
            "JOIN {}, {} ON {}\n",
            lang_ident(&m.graph.nodes()[e.a].alias),
            lang_ident(&m.graph.nodes()[e.b].alias),
            e.predicate
        ));
    }
    for f in &m.source_filters {
        out.push_str(&format!("WHERE SOURCE {f}\n"));
    }
    for f in &m.target_filters {
        out.push_str(&format!("WHERE TARGET {f}\n"));
    }
    if !m.correspondences.is_empty() {
        let items: Vec<String> = m
            .correspondences
            .iter()
            .map(|v| format!("{} AS {}", v.expr, lang_ident(&v.target_attr)))
            .collect();
        out.push_str(&format!("SELECT {}\n", items.join(", ")));
    }
    out
}

/// One `FROM` item: `relation [AS alias] [CODE code]`, with `CODE`
/// emitted only when the code differs from the node's derived default.
fn node_item(n: &Node) -> String {
    let mut s = lang_ident(&n.relation);
    if n.alias != n.relation {
        s.push_str(&format!(" AS {}", lang_ident(&n.alias)));
    }
    let default_node = if n.alias == n.relation {
        Node::new(n.alias.clone())
    } else {
        Node::copy_of(n.alias.clone(), n.relation.clone())
    };
    if n.code != default_node.code {
        s.push_str(&format!(" CODE {}", lang_ident(&n.code)));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_map;
    use clio_core::prelude::{QueryGraph, ValueCorrespondence};
    use clio_core::script;
    use clio_relational::parser::parse_expr;
    use clio_relational::schema::{Attribute, RelSchema};
    use clio_relational::value::DataType;

    fn sample_mapping() -> Mapping {
        let mut g = QueryGraph::new();
        let c = g.add_node(Node::new("Children")).unwrap();
        let p2 = g.add_node(Node::copy_of("Parents2", "Parents")).unwrap();
        let ph = g.add_node(Node::new("PhoneDir")).unwrap();
        g.add_edge(c, p2, parse_expr("Children.mid = Parents2.ID").unwrap())
            .unwrap();
        g.add_edge(p2, ph, parse_expr("PhoneDir.ID = Parents2.ID").unwrap())
            .unwrap();
        let target = RelSchema::new(
            "Kids",
            vec![
                Attribute::not_null("ID", DataType::Str),
                Attribute::new("contactPh", DataType::Str),
            ],
        )
        .unwrap();
        Mapping::new(g, target)
            .with_correspondence(ValueCorrespondence::identity("Children.ID", "ID"))
            .with_correspondence(
                ValueCorrespondence::parse(
                    "concat(PhoneDir.type, ',', PhoneDir.number)",
                    "contactPh",
                )
                .unwrap(),
            )
            .with_source_filter(parse_expr("Children.age < 7").unwrap())
            .with_target_not_null_filters()
    }

    #[test]
    fn printed_text_is_readable() {
        let text = print_mapping(&sample_mapping());
        assert!(
            text.contains("MAP Kids (ID str not null, contactPh str)"),
            "{text}"
        );
        assert!(
            text.contains("FROM Children, Parents AS Parents2, PhoneDir"),
            "{text}"
        );
        assert!(
            text.contains("JOIN Children, Parents2 ON Children.mid = Parents2.ID"),
            "{text}"
        );
        assert!(text.contains("WHERE SOURCE Children.age < 7"), "{text}");
        assert!(text.contains("WHERE TARGET Kids.ID IS NOT NULL"), "{text}");
        assert!(text.contains("AS contactPh"), "{text}");
    }

    #[test]
    fn print_parse_round_trips() {
        let m = sample_mapping();
        assert_eq!(parse_map(&print_mapping(&m)).unwrap(), m);
    }

    #[test]
    fn quoted_and_keyword_identifiers_round_trip() {
        let mut g = QueryGraph::new();
        let a = g.add_node(Node::copy_of("My Rel", "weird rel")).unwrap();
        let b = g.add_node(Node::new("Other").with_code("x y")).unwrap();
        let f = g.add_node(Node::copy_of("from", "select")).unwrap();
        g.add_edge(a, b, parse_expr("\"My Rel\".\"a b\" = Other.z").unwrap())
            .unwrap();
        g.add_edge(b, f, parse_expr("Other.z = \"from\".x").unwrap())
            .unwrap();
        let target = RelSchema::new(
            "Tar get",
            vec![
                Attribute::not_null("id col", DataType::Str),
                Attribute::new("and", DataType::Int),
                Attribute::new("where", DataType::Int),
            ],
        )
        .unwrap();
        let m = Mapping::new(g, target)
            .with_correspondence(
                ValueCorrespondence::parse("\"My Rel\".\"a b\"", "id col").unwrap(),
            )
            .with_source_filter(parse_expr("\"My Rel\".\"a b\" IS NOT NULL").unwrap());
        let text = print_mapping(&m);
        assert!(text.contains("FROM \"weird rel\" AS \"My Rel\""), "{text}");
        assert!(text.contains("\"select\" AS \"from\""), "{text}");
        assert!(text.contains("\"where\" int"), "{text}");
        assert_eq!(parse_map(&text).unwrap(), m);
    }

    #[test]
    fn custom_codes_round_trip_and_default_codes_are_omitted() {
        let mut g = QueryGraph::new();
        g.add_node(Node::new("PhoneDir").with_code("D")).unwrap();
        g.add_node(Node::new("Parents")).unwrap();
        let m = Mapping::new(
            g,
            RelSchema::new("T", vec![Attribute::new("a", DataType::Int)]).unwrap(),
        );
        let text = print_mapping(&m);
        assert!(text.contains("PhoneDir CODE D"), "{text}");
        assert!(!text.contains("Parents CODE"), "{text}");
        assert_eq!(parse_map(&text).unwrap(), m);
    }

    #[test]
    fn script_round_trips_through_the_language() {
        // everything the script format expresses, the language expresses
        let m = sample_mapping();
        let via_script = script::parse_mapping(&script::write_mapping(&m)).unwrap();
        let via_lang = parse_map(&print_mapping(&via_script)).unwrap();
        assert_eq!(via_lang, m);
    }

    #[test]
    fn target_only_mappings_round_trip() {
        let m = Mapping::new(
            QueryGraph::new(),
            RelSchema::new("T", vec![Attribute::new("a", DataType::Int)]).unwrap(),
        );
        let text = print_mapping(&m);
        assert_eq!(text, "MAP T (a int)\n");
        assert_eq!(parse_map(&text).unwrap(), m);
    }
}
