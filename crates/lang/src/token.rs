//! Clause-level tokenizer for the mapping language.
//!
//! The language's parser works in two layers: this tokenizer splits the
//! statement into coarse tokens (words, `"..."`-quoted identifiers,
//! `'...'` string literals and single-character symbols) with precise
//! line/column positions, the clause parser uses those tokens to find
//! clause boundaries, and the text *between* boundaries is handed to the
//! relational expression parser verbatim. Quoting rules match the
//! expression lexer exactly (`""` and `''` escapes), so a clause keyword
//! inside a quoted identifier or a string literal never splits a clause.

use clio_relational::error::{Error, Result};

/// What kind of token was lexed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TokKind {
    /// A bare word: a run of alphanumerics/underscores (keywords,
    /// identifiers and number parts all lex as words at this layer).
    Word,
    /// A `"..."`-quoted identifier; `text` holds the unescaped content.
    Quoted,
    /// A `'...'` string literal; `text` holds the unescaped content.
    Str,
    /// Any other single character.
    Sym(char),
}

/// One token with its source position.
#[derive(Debug, Clone)]
pub(crate) struct Token {
    pub kind: TokKind,
    /// Word text / unescaped quoted content / symbol character.
    pub text: String,
    /// Byte offset of the token's first character in the input.
    pub start: usize,
    /// Byte offset one past the token's last character.
    pub end: usize,
    /// Character offset of the token's first character.
    pub cpos: usize,
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column (in characters).
    pub col: usize,
}

impl Token {
    /// Is this an *unquoted* word equal to `kw`, case-insensitively?
    /// Quoted identifiers never match: `"from"` is a name, not a keyword.
    pub fn is_word(&self, kw: &str) -> bool {
        self.kind == TokKind::Word && self.text.eq_ignore_ascii_case(kw)
    }
}

/// Lex `input` into clause-level tokens.
pub(crate) fn tokenize(input: &str) -> Result<Vec<Token>> {
    let chars: Vec<(usize, char)> = input.char_indices().collect();
    let byte_at = |i: usize| chars.get(i).map_or(input.len(), |&(b, _)| b);
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;
    let mut col = 1usize;
    while i < chars.len() {
        let (start, c) = chars[i];
        let (tline, tcol, tcpos) = (line, col, i);
        match c {
            '\n' => {
                line += 1;
                col = 1;
                i += 1;
            }
            c if c.is_whitespace() => {
                col += 1;
                i += 1;
            }
            quote @ ('"' | '\'') => {
                let mut text = String::new();
                i += 1;
                col += 1;
                loop {
                    match chars.get(i) {
                        None => {
                            let what = if quote == '"' {
                                "unterminated quoted identifier"
                            } else {
                                "unterminated string literal"
                            };
                            return Err(Error::Parse {
                                pos: tcpos,
                                line: tline,
                                column: tcol,
                                token: quote.to_string(),
                                message: what.to_string(),
                            });
                        }
                        Some(&(_, q)) if q == quote => {
                            if chars.get(i + 1).map(|&(_, n)| n) == Some(quote) {
                                text.push(quote);
                                i += 2;
                                col += 2;
                            } else {
                                i += 1;
                                col += 1;
                                break;
                            }
                        }
                        Some(&(_, '\n')) => {
                            text.push('\n');
                            i += 1;
                            line += 1;
                            col = 1;
                        }
                        Some(&(_, ch)) => {
                            text.push(ch);
                            i += 1;
                            col += 1;
                        }
                    }
                }
                let kind = if quote == '"' {
                    TokKind::Quoted
                } else {
                    TokKind::Str
                };
                out.push(Token {
                    kind,
                    text,
                    start,
                    end: byte_at(i),
                    cpos: tcpos,
                    line: tline,
                    col: tcol,
                });
            }
            c if c.is_alphanumeric() || c == '_' => {
                let mut text = String::new();
                while let Some(&(_, ch)) = chars.get(i) {
                    if ch.is_alphanumeric() || ch == '_' {
                        text.push(ch);
                        i += 1;
                        col += 1;
                    } else {
                        break;
                    }
                }
                out.push(Token {
                    kind: TokKind::Word,
                    text,
                    start,
                    end: byte_at(i),
                    cpos: tcpos,
                    line: tline,
                    col: tcol,
                });
            }
            other => {
                i += 1;
                col += 1;
                out.push(Token {
                    kind: TokKind::Sym(other),
                    text: other.to_string(),
                    start,
                    end: byte_at(i),
                    cpos: tcpos,
                    line: tline,
                    col: tcol,
                });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_symbols_and_positions() {
        let toks = tokenize("MAP T (a int)\nFROM R").unwrap();
        let kinds: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(kinds, ["MAP", "T", "(", "a", "int", ")", "FROM", "R"]);
        let from = &toks[6];
        assert_eq!((from.line, from.col), (2, 1));
        assert_eq!(from.kind, TokKind::Word);
        let paren = &toks[2];
        assert_eq!(paren.kind, TokKind::Sym('('));
        assert_eq!((paren.line, paren.col), (1, 7));
    }

    #[test]
    fn quoted_identifiers_and_strings_unescape() {
        let toks = tokenize(r#""My ""R""" 'it''s'"#).unwrap();
        assert_eq!(toks[0].kind, TokKind::Quoted);
        assert_eq!(toks[0].text, "My \"R\"");
        assert_eq!(toks[1].kind, TokKind::Str);
        assert_eq!(toks[1].text, "it's");
    }

    #[test]
    fn unterminated_quotes_report_their_position() {
        let err = tokenize("MAP T\n  \"oops").unwrap_err().to_string();
        assert!(err.contains("line 2"), "{err}");
        assert!(err.contains("column 3"), "{err}");
        assert!(err.contains("unterminated quoted identifier"), "{err}");
        let err = tokenize("x 'oops").unwrap_err().to_string();
        assert!(err.contains("unterminated string literal"), "{err}");
    }

    #[test]
    fn keyword_matching_ignores_case_but_not_quotes() {
        let toks = tokenize("from \"FROM\"").unwrap();
        assert!(toks[0].is_word("FROM"));
        assert!(!toks[1].is_word("FROM"));
    }
}
