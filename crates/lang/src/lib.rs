//! `clio-lang` — a small SQL-ish surface language for schema mappings.
//!
//! The mapping script format (`clio_core::script`) is line-oriented and
//! diff-friendly; this crate adds a clause-oriented language that reads
//! like the SQL a mapping compiles to (paper Sec 5), covering everything
//! the script format can express:
//!
//! ```text
//! MAP Kids (ID str not null, contactPh str)
//! FROM Children, Parents AS Parents2, PhoneDir CODE D
//! JOIN Children, Parents2 ON Children.mid = Parents2.ID
//! JOIN Parents2, PhoneDir ON PhoneDir.ID = Parents2.ID
//! WHERE SOURCE Children.age < 7
//! WHERE TARGET Kids.ID IS NOT NULL
//! SELECT Children.ID AS ID,
//!        concat(PhoneDir.type, ',', PhoneDir.number) AS contactPh
//! ```
//!
//! * [`parse_statement`] tokenizes and parses a statement into a
//!   [`MapStmt`] AST; [`MapStmt::lower`] turns it into a
//!   `clio_core` [`Mapping`](clio_core::prelude::Mapping), and
//!   [`parse_map`] does both.
//! * [`print_mapping`] renders a mapping back as canonical statement
//!   text; `parse_map(&print_mapping(&m)) == m` for every mapping.
//! * Errors carry 1-based line/column positions into the statement
//!   text, including errors inside embedded expressions (relocated from
//!   the expression parser) and lowering errors like an unknown `JOIN`
//!   alias.
//!
//! Keywords are case-insensitive; identifiers that collide with them
//! (or carry whitespace/punctuation) are `"..."`-quoted exactly as in
//! the expression language.

#![warn(missing_docs)]

mod token;

pub mod parser;
pub mod printer;

pub use parser::{parse_map, parse_statement, JoinDecl, MapStmt, NodeDecl, SelectItem, Spanned};
pub use printer::{lang_ident, print_mapping};
