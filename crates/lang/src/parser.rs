//! Recursive-descent clause parser and lowering to [`Mapping`].
//!
//! The grammar (keywords case-insensitive; `MAP` must come first, the
//! remaining clauses may appear in any order and `JOIN`/`WHERE` may
//! repeat):
//!
//! ```text
//! statement := MAP <target-schema>
//!              [FROM node [, node]*]
//!              [JOIN a , b ON <expr>]*
//!              [WHERE (SOURCE|TARGET) <expr>]*
//!              [SELECT <expr> AS attr [, <expr> AS attr]*]
//! node      := relation [AS alias] [CODE code]
//! ```
//!
//! `<target-schema>` is the script format's `Name (attr type [not
//! null], ...)` declaration, and `<expr>` is the relational expression
//! language. Expression fragments are delegated to
//! [`clio_relational::parser::parse_expr`]; their errors are relocated
//! so line/column always refer to the original statement text.
//!
//! Identifiers follow the expression lexer's quoting rules, so a
//! relation, alias, code or attribute whose name collides with a clause
//! keyword (or carries whitespace) is written `"..."` and never
//! terminates a clause. Qualified column references like `R.from` are
//! also safe: a word adjacent to a `.` is never read as a clause
//! keyword.

use clio_core::prelude::{Mapping, Node, QueryGraph, ValueCorrespondence};
use clio_core::script::parse_target_schema;
use clio_relational::error::{Error, Result};
use clio_relational::expr::Expr;
use clio_relational::parser::parse_expr;
use clio_relational::schema::RelSchema;

use crate::token::{tokenize, TokKind, Token};

/// An identifier with its source position, kept through lowering so
/// semantic errors (an unknown alias in `JOIN`) still point at the
/// statement text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The identifier text (unquoted).
    pub text: String,
    /// Character offset in the statement.
    pub pos: usize,
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column.
    pub col: usize,
}

/// One `FROM`-clause item: `relation [AS alias] [CODE code]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeDecl {
    /// The stored relation to scan.
    pub relation: Spanned,
    /// Optional alias; defaults to the relation name.
    pub alias: Option<Spanned>,
    /// Optional node code used in `F({...})` notation.
    pub code: Option<Spanned>,
}

/// One `JOIN a, b ON predicate` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinDecl {
    /// First endpoint (a `FROM` alias).
    pub a: Spanned,
    /// Second endpoint (a `FROM` alias).
    pub b: Spanned,
    /// The join predicate.
    pub predicate: Expr,
}

/// One `SELECT` item: `expr AS attr` — a value correspondence.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    /// The source expression.
    pub expr: Expr,
    /// The target attribute it populates.
    pub attr: Spanned,
}

/// The parsed form of a `MAP` statement, before lowering.
#[derive(Debug, Clone, PartialEq)]
pub struct MapStmt {
    /// The target relation schema from the `MAP` clause.
    pub target: RelSchema,
    /// `FROM`-clause nodes, in declaration order.
    pub nodes: Vec<NodeDecl>,
    /// `JOIN` clauses, in declaration order.
    pub joins: Vec<JoinDecl>,
    /// `WHERE SOURCE` predicates, in declaration order.
    pub source_filters: Vec<Expr>,
    /// `WHERE TARGET` predicates, in declaration order.
    pub target_filters: Vec<Expr>,
    /// `SELECT` items, in declaration order.
    pub selects: Vec<SelectItem>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Clause {
    Map,
    From,
    Join,
    Where,
    Select,
}

fn clause_of(word: &str) -> Option<Clause> {
    for (kw, c) in [
        ("MAP", Clause::Map),
        ("FROM", Clause::From),
        ("JOIN", Clause::Join),
        ("WHERE", Clause::Where),
        ("SELECT", Clause::Select),
    ] {
        if word.eq_ignore_ascii_case(kw) {
            return Some(c);
        }
    }
    None
}

/// Is token `i` a clause keyword at top level? Quoted identifiers and
/// words adjacent to a `.` (qualified-name parts inside expressions)
/// are not.
fn clause_start(toks: &[Token], i: usize) -> Option<Clause> {
    let t = &toks[i];
    if t.kind != TokKind::Word {
        return None;
    }
    let c = clause_of(&t.text)?;
    if i > 0 && toks[i - 1].kind == TokKind::Sym('.') {
        return None;
    }
    if toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Sym('.')) {
        return None;
    }
    Some(c)
}

fn err_at(t: &Token, message: impl Into<String>) -> Error {
    Error::Parse {
        pos: t.cpos,
        line: t.line,
        column: t.col,
        token: t.text.clone(),
        message: message.into(),
    }
}

fn err_at_span(s: &Spanned, message: impl Into<String>) -> Error {
    Error::Parse {
        pos: s.pos,
        line: s.line,
        column: s.col,
        token: s.text.clone(),
        message: message.into(),
    }
}

/// An identifier token (bare word or quoted), as a [`Spanned`].
fn ident(t: &Token, what: &str) -> Result<Spanned> {
    match t.kind {
        TokKind::Word | TokKind::Quoted => Ok(Spanned {
            text: t.text.clone(),
            pos: t.cpos,
            line: t.line,
            col: t.col,
        }),
        _ => Err(err_at(t, format!("expected {what}, got `{}`", t.text))),
    }
}

/// Parse the raw text under `body` (a contiguous token run) as a
/// relational expression, relocating any error onto the statement.
fn sub_expr(input: &str, body: &[Token]) -> Result<Expr> {
    let first = &body[0];
    let frag = &input[first.start..body[body.len() - 1].end];
    parse_expr(frag).map_err(|e| match e {
        Error::Parse {
            pos,
            line,
            column,
            token,
            message,
        } => Error::Parse {
            pos: first.cpos + pos,
            line: first.line + line - 1,
            column: if line == 1 {
                first.col + column - 1
            } else {
                column
            },
            token,
            message,
        },
        other => other,
    })
}

/// Split a token run on top-level commas (outside parentheses).
fn comma_groups(body: &[Token]) -> Vec<&[Token]> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = 0usize;
    for (i, t) in body.iter().enumerate() {
        match t.kind {
            TokKind::Sym('(') => depth += 1,
            TokKind::Sym(')') => depth -= 1,
            TokKind::Sym(',') if depth == 0 => {
                out.push(&body[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&body[start..]);
    out
}

fn parse_from(body: &[Token], kw: &Token) -> Result<Vec<NodeDecl>> {
    let mut nodes = Vec::new();
    for group in comma_groups(body) {
        let Some(first) = group.first() else {
            return Err(err_at(kw, "FROM clause has an empty item"));
        };
        let relation = ident(first, "a relation name in FROM")?;
        let mut alias = None;
        let mut code = None;
        let mut it = group[1..].iter();
        while let Some(t) = it.next() {
            if t.is_word("AS") {
                if alias.is_some() {
                    return Err(err_at(t, "duplicate AS in FROM item"));
                }
                let name = it.next().ok_or_else(|| err_at(t, "AS needs an alias"))?;
                alias = Some(ident(name, "an alias after AS")?);
            } else if t.is_word("CODE") {
                if code.is_some() {
                    return Err(err_at(t, "duplicate CODE in FROM item"));
                }
                let name = it.next().ok_or_else(|| err_at(t, "CODE needs a value"))?;
                code = Some(ident(name, "a code after CODE")?);
            } else {
                return Err(err_at(
                    t,
                    format!("unexpected token `{}` in FROM clause", t.text),
                ));
            }
        }
        nodes.push(NodeDecl {
            relation,
            alias,
            code,
        });
    }
    Ok(nodes)
}

fn parse_join(input: &str, body: &[Token], kw: &Token) -> Result<JoinDecl> {
    let usage = "JOIN clause needs `JOIN a, b ON predicate`";
    if body.len() < 5 {
        return Err(err_at(kw, usage));
    }
    let a = ident(&body[0], "a node alias in JOIN")?;
    if body[1].kind != TokKind::Sym(',') {
        return Err(err_at(&body[1], usage));
    }
    let b = ident(&body[2], "a node alias in JOIN")?;
    if !body[3].is_word("ON") {
        return Err(err_at(&body[3], usage));
    }
    let predicate = sub_expr(input, &body[4..])?;
    Ok(JoinDecl { a, b, predicate })
}

/// `true` for a `WHERE SOURCE` filter, `false` for `WHERE TARGET`.
fn parse_where(input: &str, body: &[Token], kw: &Token) -> Result<(bool, Expr)> {
    let usage = "WHERE clause needs `WHERE SOURCE|TARGET predicate`";
    let Some(first) = body.first() else {
        return Err(err_at(kw, usage));
    };
    let on_source = if first.is_word("SOURCE") {
        true
    } else if first.is_word("TARGET") {
        false
    } else {
        return Err(err_at(first, usage));
    };
    if body.len() < 2 {
        return Err(err_at(first, usage));
    }
    Ok((on_source, sub_expr(input, &body[1..])?))
}

fn parse_select(input: &str, body: &[Token], kw: &Token) -> Result<Vec<SelectItem>> {
    let mut items = Vec::new();
    for group in comma_groups(body) {
        let Some(first) = group.first() else {
            return Err(err_at(kw, "SELECT clause has an empty item"));
        };
        // split on the LAST top-level AS, so expressions containing
        // quoted identifiers can never confuse the split
        let mut depth = 0i32;
        let mut as_idx = None;
        for (i, t) in group.iter().enumerate() {
            match t.kind {
                TokKind::Sym('(') => depth += 1,
                TokKind::Sym(')') => depth -= 1,
                _ if depth == 0 && t.is_word("AS") => as_idx = Some(i),
                _ => {}
            }
        }
        let Some(as_idx) = as_idx else {
            return Err(err_at(first, "SELECT item needs `expr AS attr`"));
        };
        if as_idx == 0 {
            return Err(err_at(first, "SELECT item has an empty expression"));
        }
        let attr = match &group[as_idx + 1..] {
            [t] => ident(t, "a target attribute after AS")?,
            [] => return Err(err_at(&group[as_idx], "AS needs a target attribute")),
            [_, extra, ..] => {
                return Err(err_at(
                    extra,
                    format!("unexpected token `{}` after SELECT item", extra.text),
                ))
            }
        };
        let expr = sub_expr(input, &group[..as_idx])?;
        items.push(SelectItem { expr, attr });
    }
    Ok(items)
}

/// Parse a `MAP` statement into its AST without lowering it.
pub fn parse_statement(input: &str) -> Result<MapStmt> {
    let toks = tokenize(input)?;
    if toks.is_empty() {
        return Err(Error::Parse {
            pos: 0,
            line: 1,
            column: 1,
            token: String::new(),
            message: "empty mapping statement".into(),
        });
    }
    let bounds: Vec<(usize, Clause)> = (0..toks.len())
        .filter_map(|i| clause_start(&toks, i).map(|c| (i, c)))
        .collect();
    if bounds.first() != Some(&(0, Clause::Map)) {
        return Err(err_at(
            &toks[0],
            "expected `MAP` to start the mapping statement",
        ));
    }
    let mut target: Option<RelSchema> = None;
    let mut nodes: Option<Vec<NodeDecl>> = None;
    let mut joins = Vec::new();
    let mut source_filters = Vec::new();
    let mut target_filters = Vec::new();
    let mut selects: Option<Vec<SelectItem>> = None;
    for (k, &(ti, clause)) in bounds.iter().enumerate() {
        let end = bounds.get(k + 1).map_or(toks.len(), |&(j, _)| j);
        let body = &toks[ti + 1..end];
        let kw = &toks[ti];
        match clause {
            Clause::Map => {
                if target.is_some() {
                    return Err(err_at(kw, "duplicate MAP clause"));
                }
                if body.is_empty() {
                    return Err(err_at(kw, "MAP clause needs a target schema"));
                }
                let frag = &input[body[0].start..body[body.len() - 1].end];
                let schema = parse_target_schema(frag).map_err(|e| match e {
                    Error::Invalid(msg) => err_at(&body[0], msg),
                    other => other,
                })?;
                target = Some(schema);
            }
            Clause::From => {
                if nodes.is_some() {
                    return Err(err_at(kw, "duplicate FROM clause"));
                }
                nodes = Some(parse_from(body, kw)?);
            }
            Clause::Join => joins.push(parse_join(input, body, kw)?),
            Clause::Where => {
                let (on_source, e) = parse_where(input, body, kw)?;
                if on_source {
                    source_filters.push(e);
                } else {
                    target_filters.push(e);
                }
            }
            Clause::Select => {
                if selects.is_some() {
                    return Err(err_at(kw, "duplicate SELECT clause"));
                }
                selects = Some(parse_select(input, body, kw)?);
            }
        }
    }
    Ok(MapStmt {
        target: target.expect("MAP clause is checked above"),
        nodes: nodes.unwrap_or_default(),
        joins,
        source_filters,
        target_filters,
        selects: selects.unwrap_or_default(),
    })
}

impl MapStmt {
    /// Lower the statement to a [`Mapping`]: build the query graph from
    /// `FROM`/`JOIN`, attach `SELECT` correspondences and `WHERE`
    /// filters. Alias errors point back at the statement text.
    pub fn lower(&self) -> Result<Mapping> {
        let mut graph = QueryGraph::new();
        for n in &self.nodes {
            let alias = n.alias.as_ref().unwrap_or(&n.relation);
            let mut node = if alias.text == n.relation.text {
                Node::new(n.relation.text.clone())
            } else {
                Node::copy_of(alias.text.clone(), n.relation.text.clone())
            };
            if let Some(c) = &n.code {
                node = node.with_code(c.text.clone());
            }
            graph
                .add_node(node)
                .map_err(|e| err_at_span(alias, e.to_string()))?;
        }
        for j in &self.joins {
            let a = graph
                .node_by_alias(&j.a.text)
                .ok_or_else(|| err_at_span(&j.a, format!("unknown node `{}` in JOIN", j.a.text)))?;
            let b = graph
                .node_by_alias(&j.b.text)
                .ok_or_else(|| err_at_span(&j.b, format!("unknown node `{}` in JOIN", j.b.text)))?;
            graph.add_edge(a, b, j.predicate.clone())?;
        }
        let mut m = Mapping::new(graph, self.target.clone());
        m.correspondences = self
            .selects
            .iter()
            .map(|s| ValueCorrespondence::new(s.expr.clone(), s.attr.text.clone()))
            .collect();
        m.source_filters = self.source_filters.clone();
        m.target_filters = self.target_filters.clone();
        Ok(m)
    }
}

/// Parse a `MAP` statement and lower it to a [`Mapping`] in one step.
pub fn parse_map(input: &str) -> Result<Mapping> {
    parse_statement(input)?.lower()
}

#[cfg(test)]
mod tests {
    use super::*;
    use clio_core::script;

    const SAMPLE: &str = "\
MAP Kids (ID str not null, contactPh str, FamilyIncome int)
FROM Children, Parents AS Parents2, PhoneDir
JOIN Children, Parents2 ON Children.mid = Parents2.ID
JOIN Parents2, PhoneDir ON PhoneDir.ID = Parents2.ID
WHERE SOURCE Children.age < 7
WHERE TARGET Kids.ID IS NOT NULL
SELECT Children.ID AS ID, concat(PhoneDir.type, ',', PhoneDir.number) AS contactPh
";

    /// The script-format equivalent of [`SAMPLE`].
    const SAMPLE_SCRIPT: &str = "\
target Kids (ID str not null, contactPh str, FamilyIncome int)
node Children
node Parents2 = Parents
node PhoneDir
edge Children -- Parents2 : Children.mid = Parents2.ID
edge Parents2 -- PhoneDir : PhoneDir.ID = Parents2.ID
corr Children.ID -> ID
corr concat(PhoneDir.type, ',', PhoneDir.number) -> contactPh
where source Children.age < 7
where target Kids.ID IS NOT NULL
";

    #[test]
    fn statement_lowers_to_the_script_equivalent_mapping() {
        let m = parse_map(SAMPLE).unwrap();
        let expected = script::parse_mapping(SAMPLE_SCRIPT).unwrap();
        assert_eq!(m, expected);
    }

    #[test]
    fn keywords_are_case_insensitive_and_order_is_flexible() {
        let text = "map T (a int)\nselect R.x as a\nfrom R\nwhere source R.x = 1\n";
        let m = parse_map(text).unwrap();
        assert_eq!(m.target.name(), "T");
        assert_eq!(m.graph.node_count(), 1);
        assert_eq!(m.correspondences.len(), 1);
        assert_eq!(m.source_filters.len(), 1);
    }

    #[test]
    fn node_codes_and_aliases_lower_onto_nodes() {
        let m = parse_map("MAP T (a int)\nFROM Parents AS P2 CODE Q, PhoneDir CODE D\n").unwrap();
        let nodes = m.graph.nodes();
        assert_eq!(nodes[0].alias, "P2");
        assert_eq!(nodes[0].relation, "Parents");
        assert_eq!(nodes[0].code, "Q");
        assert_eq!(nodes[1].alias, "PhoneDir");
        assert_eq!(nodes[1].code, "D");
    }

    #[test]
    fn quoted_identifiers_survive() {
        let text = "MAP \"Tar get\" (\"id col\" str)\nFROM \"weird rel\" AS \"My Rel\"\nSELECT \"My Rel\".\"a b\" AS \"id col\"\nWHERE SOURCE \"My Rel\".\"a b\" IS NOT NULL\n";
        let m = parse_map(text).unwrap();
        assert_eq!(m.target.name(), "Tar get");
        assert_eq!(m.graph.nodes()[0].alias, "My Rel");
        assert_eq!(m.graph.nodes()[0].relation, "weird rel");
        assert_eq!(m.correspondences[0].target_attr, "id col");
    }

    #[test]
    fn quoted_keywords_are_names_not_clause_breaks() {
        // a relation named `from` and an attribute named `select`
        let text = "MAP T (\"select\" int)\nFROM \"from\"\nSELECT \"from\".x AS \"select\"\n";
        let m = parse_map(text).unwrap();
        assert_eq!(m.graph.nodes()[0].relation, "from");
        assert_eq!(m.correspondences[0].target_attr, "select");
    }

    #[test]
    fn qualified_names_matching_keywords_do_not_split_clauses() {
        // `R.select` inside the WHERE expression must not start a clause
        let text = "MAP T (a int)\nFROM R\nWHERE SOURCE R.select = 1\n";
        let m = parse_map(text).unwrap();
        assert_eq!(m.source_filters.len(), 1);
    }

    #[test]
    fn string_literals_containing_keywords_do_not_split_clauses() {
        let text = "MAP T (a int)\nFROM R\nWHERE SOURCE R.x = 'WHERE SELECT FROM'\n";
        let m = parse_map(text).unwrap();
        assert_eq!(m.source_filters.len(), 1);
        assert!(m.source_filters[0].to_string().contains("WHERE SELECT"));
    }

    #[test]
    fn expression_errors_are_relocated_to_the_statement() {
        let text = "MAP T (a int)\nFROM R\nWHERE SOURCE R.x = )\n";
        let err = parse_map(text).unwrap_err().to_string();
        assert!(err.contains("line 3"), "{err}");
        assert!(err.contains("column 20"), "{err}");
        assert!(err.contains("near `)`"), "{err}");

        let text = "MAP T (a int)\nFROM R\nJOIN R, R ON R.x ==\n";
        let err = parse_map(text).unwrap_err().to_string();
        assert!(err.contains("line 3"), "{err}");
    }

    #[test]
    fn structural_errors_carry_positions() {
        for (text, needle) in [
            ("", "empty mapping statement"),
            ("FROM R", "expected `MAP`"),
            ("MAP T (a int)\nMAP T (b int)", "duplicate MAP"),
            ("MAP T (a int)\nFROM R\nFROM S", "duplicate FROM"),
            ("MAP T (a int)\nFROM R,", "empty item"),
            ("MAP T (a int)\nFROM R frobs", "unexpected token `frobs`"),
            ("MAP T (a int)\nFROM R AS", "AS needs an alias"),
            ("MAP T (a int)\nJOIN R ON R.x = 1", "JOIN a, b ON"),
            ("MAP T (a int)\nFROM R\nWHERE R.x = 1", "SOURCE|TARGET"),
            ("MAP T (a int)\nFROM R\nSELECT R.x", "needs `expr AS attr`"),
            (
                "MAP T (a int)\nFROM R\nSELECT R.x AS a b",
                "after SELECT item",
            ),
            ("MAP T (a frobs)", "unknown type"),
            (
                "MAP T (a int)\nFROM R\nJOIN R, S ON R.x = S.x",
                "unknown node `S`",
            ),
        ] {
            let err = parse_map(text).unwrap_err().to_string();
            assert!(err.contains(needle), "for {text:?}: got {err}");
        }
        // positions on a structural error
        let err = parse_map("MAP T (a int)\nFROM R\nJOIN R, S ON R.x = S.x")
            .unwrap_err()
            .to_string();
        assert!(err.contains("line 3, column 9"), "{err}");
    }

    #[test]
    fn function_call_commas_do_not_split_select_items() {
        let text = "MAP T (a str, b str)\nFROM R\nSELECT concat(R.x, ',', R.y) AS a, R.z AS b\n";
        let m = parse_map(text).unwrap();
        assert_eq!(m.correspondences.len(), 2);
    }
}
