//! `clio-pager` — fixed-size paged heap files and a shared buffer pool,
//! so the engine can stream over source databases larger than memory.
//!
//! This crate knows nothing about relations or values: it stores and
//! retrieves opaque byte *records* in **heap files** made of fixed-size
//! pages, and serves page reads through a bounded [`Pager`] buffer pool
//! (pin/unpin, LRU eviction preferring clean frames, dirty-page
//! write-back). `clio-relational`'s paged storage backend encodes rows
//! into records on top of it (see `docs/storage.md`).
//!
//! ## File format (version 1)
//!
//! A heap file is `page_count + 1` pages of `page_size` bytes each. All
//! integers are little-endian; every page carries the magic, the format
//! version, and a trailing FNV-1a 64 checksum over everything before it
//! — the same checksummed binary idiom as `clio-incr`'s disk cache.
//!
//! ```text
//! header page (page 0):
//!   magic        b"CLPG"
//!   version      u32            (currently 1)
//!   page_size    u32
//!   page_count   u64            (data pages, excluding this header)
//!   record_count u64
//!   ...zero padding...
//!   checksum     u64            (FNV-1a 64 over the bytes above)
//!
//! data page n (n in 1..=page_count, at byte offset n * page_size):
//!   magic        b"CLPG"
//!   version      u32
//!   page_no      u64            (= n; catches misplaced/torn pages)
//!   used         u32            (payload bytes in this page)
//!   payload      `used` bytes of record fragments
//!   ...zero padding...
//!   checksum     u64
//! ```
//!
//! Records may be larger than a page, so the payload is a sequence of
//! *fragments* in the log-record style: a flag byte (`1` full, `2`
//! first, `3` middle, `4` last), a `u32` length, and the bytes. A
//! fragment never spans a page boundary; [`HeapCursor`] reassembles
//! multi-fragment records while keeping only one page pinned.
//!
//! ## Crash safety and tolerance
//!
//! [`HeapWriter`] builds the whole file in a `.tmp-{pid}-{seq}` sibling
//! and renames it into place after an fsync, so readers never observe a
//! half-written heap. Reads never trust the file: a truncated file, a
//! torn header, a wrong magic or version, or a failed page checksum
//! degrades to a typed [`PagerError`] — one rate-limited stderr line
//! (category `pager.load`) and a `pager.load_errors` count, never a
//! wrong answer and never a panic. In-place page updates
//! ([`Pager::with_page_mut`]) re-checksum the frame immediately, so a
//! crash between dirtying and write-back can at worst lose the update,
//! not corrupt the page silently.

#![warn(missing_docs)]

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use clio_obs::Counter;

/// First bytes of every page.
pub const MAGIC: [u8; 4] = *b"CLPG";
/// Current heap-file format version.
pub const FORMAT_VERSION: u32 = 1;
/// Smallest accepted page size (headers plus a useful payload).
pub const MIN_PAGE_SIZE: usize = 64;
/// Largest accepted page size.
pub const MAX_PAGE_SIZE: usize = 1 << 20;
/// Default page size for new heap files.
pub const DEFAULT_PAGE_SIZE: usize = 4096;

const DATA_HEADER_LEN: usize = 20; // magic + version + page_no + used
const CHECKSUM_LEN: usize = 8;
const FRAG_HEADER_LEN: usize = 5; // flag + len

const FRAG_FULL: u8 = 1;
const FRAG_FIRST: u8 = 2;
const FRAG_MIDDLE: u8 = 3;
const FRAG_LAST: u8 = 4;

const FNV_OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET_BASIS;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Record-fragment payload capacity of one data page.
fn payload_cap(page_size: usize) -> usize {
    page_size - DATA_HEADER_LEN - CHECKSUM_LEN
}

/// Why a heap file (or one of its pages) could not be served.
#[derive(Debug)]
pub enum PagerError {
    /// The operating system failed the read or write.
    Io(std::io::Error),
    /// The bytes on disk are not a valid heap file/page. The detail is
    /// a short human phrase (`"checksum mismatch"`, `"truncated
    /// header"`, ...).
    Corrupt {
        /// The offending heap file.
        file: PathBuf,
        /// What was wrong with it.
        detail: String,
    },
}

impl std::fmt::Display for PagerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PagerError::Io(e) => write!(f, "i/o error: {e}"),
            PagerError::Corrupt { file, detail } => {
                write!(f, "`{}`: {detail}", file.display())
            }
        }
    }
}

impl std::error::Error for PagerError {}

/// Build a [`PagerError::Corrupt`], logging one rate-limited stderr
/// line and bumping `pager.load_errors` — the single degradation path
/// for every defect a read can encounter.
fn degraded(file: &Path, detail: impl Into<String>) -> PagerError {
    let detail = detail.into();
    clio_obs::incr(Counter::PagerLoadErrors);
    clio_obs::warn_limited(
        "pager.load",
        &format!("cannot read heap file `{}`: {detail}", file.display()),
    );
    PagerError::Corrupt {
        file: file.to_path_buf(),
        detail,
    }
}

/// Wrap an I/O failure on `file` the same way (logged + counted).
fn degraded_io(file: &Path, e: std::io::Error) -> PagerError {
    clio_obs::incr(Counter::PagerLoadErrors);
    clio_obs::warn_limited(
        "pager.load",
        &format!("cannot read heap file `{}`: {e}", file.display()),
    );
    PagerError::Io(e)
}

/// Handle to a heap file registered with a [`Pager`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FileId(usize);

/// A pinned, immutable view of one data page. The page stays resident
/// (the buffer pool will not evict its frame) until every `PageRef` to
/// it is dropped — pinning is the `Arc` reference count.
#[derive(Debug, Clone)]
pub struct PageRef {
    data: Arc<Vec<u8>>,
    used: usize,
}

impl PageRef {
    /// The page's record-fragment payload (the `used` bytes).
    #[must_use]
    pub fn payload(&self) -> &[u8] {
        &self.data[DATA_HEADER_LEN..DATA_HEADER_LEN + self.used]
    }
}

struct FileState {
    path: PathBuf,
    file: File,
    writable: bool,
    page_size: usize,
    page_count: u64,
    record_count: u64,
}

struct Frame {
    data: Arc<Vec<u8>>,
    used: usize,
    dirty: bool,
    tick: u64,
}

impl Frame {
    /// A frame is pinned while any [`PageRef`] still holds its buffer.
    fn pinned(&self) -> bool {
        Arc::strong_count(&self.data) > 1
    }
}

struct Inner {
    files: Vec<FileState>,
    frames: HashMap<(usize, u64), Frame>,
    tick: u64,
}

/// A buffer pool serving fixed-size pages from registered heap files.
///
/// One pool is shared across all of a database's heap files: frames are
/// keyed by `(file, page)`, capacity is a global page budget, and
/// eviction is LRU preferring clean unpinned frames (a dirty victim is
/// written back first). All methods take `&self`; the pool is
/// internally synchronized and safe to share across threads.
pub struct Pager {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for Pager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pager")
            .field("capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

impl Pager {
    /// A pool holding at most `pool_pages` resident pages (minimum 1).
    #[must_use]
    pub fn new(pool_pages: usize) -> Pager {
        Pager {
            capacity: pool_pages.max(1),
            inner: Mutex::new(Inner {
                files: Vec::new(),
                frames: HashMap::new(),
                tick: 0,
            }),
        }
    }

    /// The pool's page budget.
    #[must_use]
    pub fn pool_pages(&self) -> usize {
        self.capacity
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Register a heap file, validating its header page and its length
    /// against the header's page count.
    ///
    /// # Errors
    ///
    /// [`PagerError`] if the file cannot be opened or its header is
    /// torn, truncated, from another format/version, or checksummed
    /// wrong — each logged and counted in `pager.load_errors`.
    pub fn open(&self, path: &Path) -> Result<FileId, PagerError> {
        let (file, writable) = match OpenOptions::new().read(true).write(true).open(path) {
            Ok(f) => (f, true),
            // A read-only database directory is fine until something
            // needs write-back.
            Err(_) => match File::open(path) {
                Ok(f) => (f, false),
                Err(e) => return Err(degraded_io(path, e)),
            },
        };
        let mut state = FileState {
            path: path.to_path_buf(),
            file,
            writable,
            page_size: 0,
            page_count: 0,
            record_count: 0,
        };
        read_header(&mut state)?;
        let mut inner = self.lock();
        inner.files.push(state);
        Ok(FileId(inner.files.len() - 1))
    }

    /// Number of records in a registered heap file (from its header).
    #[must_use]
    pub fn record_count(&self, file: FileId) -> u64 {
        self.lock().files[file.0].record_count
    }

    /// Number of data pages in a registered heap file.
    #[must_use]
    pub fn page_count(&self, file: FileId) -> u64 {
        self.lock().files[file.0].page_count
    }

    /// Fetch data page `page_no` (1-based) of `file`, pinned. Resident
    /// frames are served from the pool (`pager.hits`); otherwise the
    /// page is read and verified from disk (`pager.misses` +
    /// `pager.page_reads`), evicting the least-recently-used unpinned
    /// frame if the pool is full.
    ///
    /// # Errors
    ///
    /// [`PagerError`] if the page is out of range, unreadable, or fails
    /// verification (logged + counted, see the crate docs).
    pub fn fetch(&self, file: FileId, page_no: u64) -> Result<PageRef, PagerError> {
        let _span = clio_obs::span("pager.fetch");
        let mut inner = self.lock();
        self.ensure_resident(&mut inner, file, page_no)?;
        let frame = &inner.frames[&(file.0, page_no)];
        Ok(PageRef {
            data: Arc::clone(&frame.data),
            used: frame.used,
        })
    }

    /// Mutate the payload of data page `page_no` in place. The frame is
    /// re-checksummed immediately and marked dirty; it reaches disk on
    /// eviction or [`Pager::flush`]. A concurrently pinned [`PageRef`]
    /// keeps its pre-update snapshot.
    ///
    /// # Errors
    ///
    /// [`PagerError`] if the page cannot be loaded.
    pub fn with_page_mut(
        &self,
        file: FileId,
        page_no: u64,
        f: impl FnOnce(&mut [u8]),
    ) -> Result<(), PagerError> {
        let mut inner = self.lock();
        self.ensure_resident(&mut inner, file, page_no)?;
        let page_size = inner.files[file.0].page_size;
        let frame = inner
            .frames
            .get_mut(&(file.0, page_no))
            .expect("frame resident");
        let used = frame.used;
        let data = Arc::make_mut(&mut frame.data);
        f(&mut data[DATA_HEADER_LEN..DATA_HEADER_LEN + used]);
        let sum = fnv1a(&data[..page_size - CHECKSUM_LEN]);
        data[page_size - CHECKSUM_LEN..].copy_from_slice(&sum.to_le_bytes());
        frame.dirty = true;
        Ok(())
    }

    /// Write every dirty frame back to its file and fsync the touched
    /// files.
    ///
    /// # Errors
    ///
    /// [`PagerError::Io`] on the first failed write.
    pub fn flush(&self) -> Result<(), PagerError> {
        let mut inner = self.lock();
        let dirty: Vec<(usize, u64)> = inner
            .frames
            .iter()
            .filter(|(_, f)| f.dirty)
            .map(|(k, _)| *k)
            .collect();
        let mut touched: Vec<usize> = Vec::new();
        for key in dirty {
            write_back(&mut inner, key)?;
            if !touched.contains(&key.0) {
                touched.push(key.0);
            }
        }
        for idx in touched {
            inner.files[idx].file.sync_all().map_err(PagerError::Io)?;
        }
        Ok(())
    }

    /// A streaming cursor over `file`'s records, front to back.
    #[must_use]
    pub fn cursor(&self, file: FileId) -> HeapCursor<'_> {
        HeapCursor {
            pager: self,
            file,
            page_count: self.page_count(file),
            next_page: 1,
            page: None,
            offset: 0,
            done: false,
        }
    }

    /// Make `(file, page_no)` resident, evicting if the pool is full.
    fn ensure_resident(
        &self,
        inner: &mut Inner,
        file: FileId,
        page_no: u64,
    ) -> Result<(), PagerError> {
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(frame) = inner.frames.get_mut(&(file.0, page_no)) {
            frame.tick = tick;
            clio_obs::incr(Counter::PagerHits);
            return Ok(());
        }
        clio_obs::incr(Counter::PagerMisses);
        while inner.frames.len() >= self.capacity {
            // If every frame is pinned the pool overflows temporarily
            // rather than deadlocking; it shrinks back as pins drop.
            if !evict_one(inner)? {
                break;
            }
        }
        let (data, used) = read_page(&mut inner.files[file.0], page_no)?;
        inner.frames.insert(
            (file.0, page_no),
            Frame {
                data: Arc::new(data),
                used,
                dirty: false,
                tick,
            },
        );
        Ok(())
    }
}

/// Evict one unpinned frame (clean preferred, then least recently
/// used), writing it back first if dirty. Returns `false` when every
/// frame is pinned.
fn evict_one(inner: &mut Inner) -> Result<bool, PagerError> {
    let victim = inner
        .frames
        .iter()
        .filter(|(_, f)| !f.pinned())
        .min_by_key(|(_, f)| (f.dirty, f.tick))
        .map(|(k, _)| *k);
    let Some(key) = victim else {
        return Ok(false);
    };
    if inner.frames[&key].dirty {
        write_back(inner, key)?;
    }
    inner.frames.remove(&key);
    clio_obs::incr(Counter::PagerEvictions);
    Ok(true)
}

/// Write one (dirty) frame's bytes back to its page slot.
fn write_back(inner: &mut Inner, key: (usize, u64)) -> Result<(), PagerError> {
    let state = &mut inner.files[key.0];
    if !state.writable {
        return Err(PagerError::Io(std::io::Error::new(
            std::io::ErrorKind::PermissionDenied,
            format!("heap file `{}` is read-only", state.path.display()),
        )));
    }
    let offset = key.1 * state.page_size as u64;
    let frame = inner.frames.get_mut(&key).expect("frame exists");
    let state = &mut inner.files[key.0];
    state
        .file
        .seek(SeekFrom::Start(offset))
        .and_then(|_| state.file.write_all(&frame.data))
        .map_err(PagerError::Io)?;
    frame.dirty = false;
    clio_obs::incr(Counter::PagerPageWrites);
    Ok(())
}

/// Read and validate a heap file's header page into `state`.
fn read_header(state: &mut FileState) -> Result<(), PagerError> {
    let len = state
        .file
        .metadata()
        .map_err(|e| degraded_io(&state.path, e))?
        .len();
    let mut prefix = [0u8; 12];
    state
        .file
        .seek(SeekFrom::Start(0))
        .and_then(|_| state.file.read_exact(&mut prefix))
        .map_err(|_| degraded(&state.path, "truncated header"))?;
    if prefix[0..4] != MAGIC {
        return Err(degraded(&state.path, "bad magic"));
    }
    let version = u32::from_le_bytes(prefix[4..8].try_into().unwrap());
    if version != FORMAT_VERSION {
        return Err(degraded(
            &state.path,
            format!("format version {version}, expected {FORMAT_VERSION}"),
        ));
    }
    let page_size = u32::from_le_bytes(prefix[8..12].try_into().unwrap()) as usize;
    if !(MIN_PAGE_SIZE..=MAX_PAGE_SIZE).contains(&page_size) {
        return Err(degraded(&state.path, format!("bad page size {page_size}")));
    }
    let mut header = vec![0u8; page_size];
    state
        .file
        .seek(SeekFrom::Start(0))
        .and_then(|_| state.file.read_exact(&mut header))
        .map_err(|_| degraded(&state.path, "truncated header"))?;
    let stored = u64::from_le_bytes(header[page_size - CHECKSUM_LEN..].try_into().unwrap());
    if stored != fnv1a(&header[..page_size - CHECKSUM_LEN]) {
        return Err(degraded(&state.path, "header checksum mismatch"));
    }
    let page_count = u64::from_le_bytes(header[12..20].try_into().unwrap());
    let record_count = u64::from_le_bytes(header[20..28].try_into().unwrap());
    let expected = (page_count + 1) * page_size as u64;
    if len < expected {
        return Err(degraded(
            &state.path,
            format!("truncated page file ({len} bytes, expected {expected})"),
        ));
    }
    if len > expected {
        return Err(degraded(&state.path, "trailing bytes"));
    }
    state.page_size = page_size;
    state.page_count = page_count;
    state.record_count = record_count;
    Ok(())
}

/// Read and verify one data page from disk (`pager.page_reads`).
fn read_page(state: &mut FileState, page_no: u64) -> Result<(Vec<u8>, usize), PagerError> {
    if page_no == 0 || page_no > state.page_count {
        return Err(degraded(
            &state.path,
            format!("page {page_no} out of range (1..={})", state.page_count),
        ));
    }
    let page_size = state.page_size;
    let mut buf = vec![0u8; page_size];
    state
        .file
        .seek(SeekFrom::Start(page_no * page_size as u64))
        .and_then(|_| state.file.read_exact(&mut buf))
        .map_err(|_| degraded(&state.path, format!("truncated page {page_no}")))?;
    clio_obs::incr(Counter::PagerPageReads);
    if buf[0..4] != MAGIC {
        return Err(degraded(&state.path, format!("page {page_no}: bad magic")));
    }
    let version = u32::from_le_bytes(buf[4..8].try_into().unwrap());
    if version != FORMAT_VERSION {
        return Err(degraded(
            &state.path,
            format!("page {page_no}: format version {version}, expected {FORMAT_VERSION}"),
        ));
    }
    let stored = u64::from_le_bytes(buf[page_size - CHECKSUM_LEN..].try_into().unwrap());
    if stored != fnv1a(&buf[..page_size - CHECKSUM_LEN]) {
        return Err(degraded(
            &state.path,
            format!("page {page_no}: checksum mismatch"),
        ));
    }
    let stored_no = u64::from_le_bytes(buf[8..16].try_into().unwrap());
    if stored_no != page_no {
        return Err(degraded(
            &state.path,
            format!("page {page_no} carries number {stored_no}"),
        ));
    }
    let used = u32::from_le_bytes(buf[16..20].try_into().unwrap()) as usize;
    if used > payload_cap(page_size) {
        return Err(degraded(
            &state.path,
            format!("page {page_no}: payload overruns the page"),
        ));
    }
    Ok((buf, used))
}

/// A streaming record iterator over one heap file, reassembling
/// fragmented records while pinning one page at a time.
pub struct HeapCursor<'a> {
    pager: &'a Pager,
    file: FileId,
    page_count: u64,
    next_page: u64,
    page: Option<PageRef>,
    offset: usize,
    done: bool,
}

impl HeapCursor<'_> {
    /// The heap file this cursor reads.
    #[must_use]
    pub fn file(&self) -> FileId {
        self.file
    }

    fn fail(&mut self, e: PagerError) -> Option<Result<Vec<u8>, PagerError>> {
        self.done = true;
        self.page = None;
        Some(Err(e))
    }

    fn corrupt(&mut self, detail: String) -> Option<Result<Vec<u8>, PagerError>> {
        let path = {
            let inner = self.pager.lock();
            inner.files[self.file.0].path.clone()
        };
        let e = degraded(&path, detail);
        self.fail(e)
    }
}

impl Iterator for HeapCursor<'_> {
    type Item = Result<Vec<u8>, PagerError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let mut partial: Option<Vec<u8>> = None;
        loop {
            // Advance to a page with at least one more fragment.
            let exhausted = match &self.page {
                None => true,
                Some(p) => self.offset + FRAG_HEADER_LEN > p.payload().len(),
            };
            if exhausted {
                self.page = None;
                if self.next_page > self.page_count {
                    self.done = true;
                    if partial.is_some() {
                        return self.corrupt("record truncated at end of file".into());
                    }
                    return None;
                }
                match self.pager.fetch(self.file, self.next_page) {
                    Ok(p) => {
                        self.page = Some(p);
                        self.offset = 0;
                        self.next_page += 1;
                    }
                    Err(e) => return self.fail(e),
                }
                continue;
            }
            let payload = self.page.as_ref().expect("page resident").payload();
            let flag = payload[self.offset];
            let len = u32::from_le_bytes(
                payload[self.offset + 1..self.offset + FRAG_HEADER_LEN]
                    .try_into()
                    .unwrap(),
            ) as usize;
            let start = self.offset + FRAG_HEADER_LEN;
            if start + len > payload.len() {
                return self.corrupt(format!(
                    "fragment overruns page {}",
                    self.next_page.saturating_sub(1)
                ));
            }
            let bytes = payload[start..start + len].to_vec();
            self.offset = start + len;
            match (flag, partial.as_mut()) {
                (FRAG_FULL, None) => return Some(Ok(bytes)),
                (FRAG_FIRST, None) => partial = Some(bytes),
                (FRAG_MIDDLE, Some(p)) => p.extend_from_slice(&bytes),
                (FRAG_LAST, Some(p)) => {
                    p.extend_from_slice(&bytes);
                    return Some(Ok(partial.take().expect("partial record")));
                }
                (other, _) => {
                    return self.corrupt(format!(
                        "bad fragment flag {other} in page {}",
                        self.next_page.saturating_sub(1)
                    ))
                }
            }
        }
    }
}

static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Builds a heap file record by record, spilling full pages as it goes.
/// Everything is written to a `.tmp-{pid}-{seq}` sibling; [`finish`]
/// writes the header, fsyncs, and renames the file into place, so a
/// crash mid-build leaves at most a stray tmp file (removed on drop),
/// never a half-valid heap.
///
/// [`finish`]: HeapWriter::finish
pub struct HeapWriter {
    final_path: PathBuf,
    tmp_path: PathBuf,
    file: Option<BufWriter<File>>,
    page_size: usize,
    payload: Vec<u8>,
    next_page: u64,
    record_count: u64,
}

impl HeapWriter {
    /// Start a heap file at `path` with the given page size.
    ///
    /// # Errors
    ///
    /// `InvalidInput` for an out-of-range page size; otherwise the
    /// underlying file-creation error.
    pub fn create(path: &Path, page_size: usize) -> std::io::Result<HeapWriter> {
        if !(MIN_PAGE_SIZE..=MAX_PAGE_SIZE).contains(&page_size) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("page size {page_size} out of range ({MIN_PAGE_SIZE}..={MAX_PAGE_SIZE})"),
            ));
        }
        let tmp_name = format!(
            ".tmp-{}-{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        );
        let tmp_path = path.with_file_name(tmp_name);
        let mut file = BufWriter::new(File::create(&tmp_path)?);
        // Reserve the header page; it is rewritten with real contents
        // (and a real checksum) by `finish`.
        file.write_all(&vec![0u8; page_size])?;
        Ok(HeapWriter {
            final_path: path.to_path_buf(),
            tmp_path,
            file: Some(file),
            page_size,
            payload: Vec::with_capacity(payload_cap(page_size)),
            next_page: 1,
            record_count: 0,
        })
    }

    /// Append one record, fragmenting it across pages as needed.
    ///
    /// # Errors
    ///
    /// The underlying write error.
    pub fn append(&mut self, record: &[u8]) -> std::io::Result<()> {
        self.record_count += 1;
        let cap = payload_cap(self.page_size);
        let mut rest = record;
        let mut first = true;
        loop {
            let free = cap - self.payload.len();
            // A fragment needs its header plus at least one byte of
            // progress (zero-length records are a lone `Full`).
            if free < FRAG_HEADER_LEN + usize::from(!rest.is_empty()) {
                self.spill_page()?;
                continue;
            }
            let take = rest.len().min(free - FRAG_HEADER_LEN);
            let flag = match (first, take == rest.len()) {
                (true, true) => FRAG_FULL,
                (true, false) => FRAG_FIRST,
                (false, true) => FRAG_LAST,
                (false, false) => FRAG_MIDDLE,
            };
            self.payload.push(flag);
            self.payload.extend_from_slice(&(take as u32).to_le_bytes());
            self.payload.extend_from_slice(&rest[..take]);
            rest = &rest[take..];
            if flag == FRAG_FULL || flag == FRAG_LAST {
                return Ok(());
            }
            first = false;
        }
    }

    /// Records appended so far.
    #[must_use]
    pub fn record_count(&self) -> u64 {
        self.record_count
    }

    fn spill_page(&mut self) -> std::io::Result<()> {
        let page = encode_data_page(self.page_size, self.next_page, &self.payload);
        self.file.as_mut().expect("writer open").write_all(&page)?;
        clio_obs::incr(Counter::PagerPageWrites);
        self.next_page += 1;
        self.payload.clear();
        Ok(())
    }

    /// Flush the tail page, write the real header, fsync, and rename
    /// the file into place.
    ///
    /// # Errors
    ///
    /// The underlying write/rename error (the tmp file is removed).
    pub fn finish(mut self) -> std::io::Result<()> {
        if !self.payload.is_empty() {
            self.spill_page()?;
        }
        let page_count = self.next_page - 1;
        let mut header = vec![0u8; self.page_size];
        header[0..4].copy_from_slice(&MAGIC);
        header[4..8].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
        header[8..12].copy_from_slice(&(self.page_size as u32).to_le_bytes());
        header[12..20].copy_from_slice(&page_count.to_le_bytes());
        header[20..28].copy_from_slice(&self.record_count.to_le_bytes());
        let sum = fnv1a(&header[..self.page_size - CHECKSUM_LEN]);
        header[self.page_size - CHECKSUM_LEN..].copy_from_slice(&sum.to_le_bytes());
        let mut file = self.file.take().expect("writer open").into_inner()?;
        file.seek(SeekFrom::Start(0))?;
        file.write_all(&header)?;
        file.sync_all()?;
        drop(file);
        std::fs::rename(&self.tmp_path, &self.final_path)?;
        clio_obs::incr(Counter::PagerPageWrites); // the header page
        Ok(())
        // Drop runs next; the tmp file is gone, so its cleanup is a
        // no-op.
    }
}

impl Drop for HeapWriter {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.tmp_path);
    }
}

fn encode_data_page(page_size: usize, page_no: u64, payload: &[u8]) -> Vec<u8> {
    debug_assert!(payload.len() <= payload_cap(page_size));
    let mut page = vec![0u8; page_size];
    page[0..4].copy_from_slice(&MAGIC);
    page[4..8].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    page[8..16].copy_from_slice(&page_no.to_le_bytes());
    page[16..20].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    page[20..20 + payload.len()].copy_from_slice(payload);
    let sum = fnv1a(&page[..page_size - CHECKSUM_LEN]);
    page[page_size - CHECKSUM_LEN..].copy_from_slice(&sum.to_le_bytes());
    page
}

#[cfg(test)]
mod tests {
    use super::*;

    // Counter state is process-global; tests that assert on counter
    // values serialize themselves.
    static LOCK: Mutex<()> = Mutex::new(());

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("clio-pager-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn build_heap(dir: &Path, name: &str, page_size: usize, records: &[Vec<u8>]) -> PathBuf {
        let path = dir.join(name);
        let mut w = HeapWriter::create(&path, page_size).unwrap();
        for r in records {
            w.append(r).unwrap();
        }
        w.finish().unwrap();
        path
    }

    fn records(n: usize, len: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| {
                (0..len)
                    .map(|j| u8::try_from((i * 31 + j * 7) % 251).unwrap())
                    .collect()
            })
            .collect()
    }

    fn read_all(pager: &Pager, file: FileId) -> Vec<Vec<u8>> {
        pager
            .cursor(file)
            .collect::<Result<Vec<_>, _>>()
            .expect("clean cursor")
    }

    #[test]
    fn round_trips_records_within_one_page() {
        let _guard = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        let dir = tmp_dir("small");
        let recs = vec![b"alpha".to_vec(), b"".to_vec(), b"gamma".to_vec()];
        let path = build_heap(&dir, "r.clh", 4096, &recs);
        let pager = Pager::new(4);
        let file = pager.open(&path).unwrap();
        assert_eq!(pager.record_count(file), 3);
        assert_eq!(pager.page_count(file), 1);
        assert_eq!(read_all(&pager, file), recs);
    }

    #[test]
    fn round_trips_records_spanning_many_pages() {
        let _guard = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        let dir = tmp_dir("span");
        // Page 64 → 36 payload bytes; a 300-byte record spans ~9 pages.
        let recs = records(7, 300);
        let path = build_heap(&dir, "r.clh", 64, &recs);
        let pager = Pager::new(2);
        let file = pager.open(&path).unwrap();
        assert_eq!(pager.record_count(file), 7);
        assert!(pager.page_count(file) > 7, "records must span pages");
        assert_eq!(read_all(&pager, file), recs);
        // A second scan gives the same answer through the (tiny) pool.
        assert_eq!(read_all(&pager, file), recs);
    }

    #[test]
    fn pool_counts_hits_misses_and_evictions() {
        let _guard = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        let dir = tmp_dir("pool");
        let path = build_heap(&dir, "r.clh", 64, &records(6, 120));
        let pager = Pager::new(2);
        let file = pager.open(&path).unwrap();
        let pages = pager.page_count(file);
        assert!(pages > 2, "working set must exceed the pool");
        clio_obs::set_metrics_enabled(true);
        clio_obs::reset_metrics();
        let _ = read_all(&pager, file); // cold: all misses
        let snap1 = clio_obs::snapshot();
        // The last page is still resident, so refetching it is a hit…
        let _ = pager.fetch(file, pages).unwrap();
        // …while a full rescan through a pool smaller than the file
        // keeps missing (sequential LRU's worst case).
        let _ = read_all(&pager, file);
        let snap2 = clio_obs::snapshot();
        clio_obs::set_metrics_enabled(false);
        assert_eq!(snap1.get(Counter::PagerMisses), pages);
        assert_eq!(snap1.get(Counter::PagerPageReads), pages);
        assert_eq!(snap1.get(Counter::PagerEvictions), pages - 2);
        assert_eq!(snap1.get(Counter::PagerLoadErrors), 0);
        assert_eq!(snap2.get(Counter::PagerHits), 1);
        assert_eq!(snap2.get(Counter::PagerMisses), 2 * pages);
    }

    #[test]
    fn pinned_pages_are_not_evicted() {
        let _guard = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        let dir = tmp_dir("pin");
        let path = build_heap(&dir, "r.clh", 64, &records(6, 120));
        let pager = Pager::new(1);
        let file = pager.open(&path).unwrap();
        let pinned = pager.fetch(file, 1).unwrap();
        let before = pinned.payload().to_vec();
        // Fetching other pages with a 1-page pool must not invalidate
        // the pinned view (the pool temporarily overflows instead).
        for n in 2..=pager.page_count(file) {
            let _ = pager.fetch(file, n).unwrap();
        }
        assert_eq!(pinned.payload(), &before[..]);
        drop(pinned);
        // With the pin gone, the pool can shrink back below budget.
        let _ = pager.fetch(file, 1).unwrap();
    }

    #[test]
    fn dirty_pages_write_back_on_eviction_and_flush() {
        let _guard = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        let dir = tmp_dir("dirty");
        let path = build_heap(&dir, "r.clh", 64, &records(6, 120));
        let pager = Pager::new(2);
        let file = pager.open(&path).unwrap();
        let original = pager.fetch(file, 1).unwrap().payload().to_vec();
        pager
            .with_page_mut(file, 1, |payload| {
                for b in payload.iter_mut() {
                    *b = b.wrapping_add(1);
                }
            })
            .unwrap();
        // Evict the dirty frame by touring the rest of the file…
        for n in 2..=pager.page_count(file) {
            let _ = pager.fetch(file, n).unwrap();
        }
        pager.flush().unwrap();
        // …then re-open cold: the update survived, checksummed.
        let pager2 = Pager::new(2);
        let file2 = pager2.open(&path).unwrap();
        let after = pager2.fetch(file2, 1).unwrap().payload().to_vec();
        assert_ne!(after, original);
        assert_eq!(after.len(), original.len());
        assert!(after
            .iter()
            .zip(&original)
            .all(|(a, b)| *a == b.wrapping_add(1)));
    }

    /// The satellite fault-injection matrix: every defect degrades to a
    /// typed error with `pager.load_errors` bumped — never a changed
    /// answer, never a panic.
    #[test]
    fn fault_injection_degrades_to_logged_errors() {
        let _guard = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        let dir = tmp_dir("faults");
        let recs = records(5, 120);
        let path = build_heap(&dir, "good.clh", 64, &recs);
        let good = std::fs::read(&path).unwrap();
        clio_obs::set_metrics_enabled(true);
        clio_obs::reset_metrics();
        let mut expected_errors = 0u64;
        let mut check = |name: &str, bytes: &[u8], detail: &str| {
            let p = dir.join(name);
            std::fs::write(&p, bytes).unwrap();
            let pager = Pager::new(4);
            let err = match pager.open(&p) {
                Err(e) => e.to_string(),
                Ok(file) => pager
                    .cursor(file)
                    .collect::<Result<Vec<_>, _>>()
                    .expect_err("defect must surface")
                    .to_string(),
            };
            assert!(err.contains(detail), "{name}: `{err}` lacks `{detail}`");
            expected_errors += 1;
        };

        // Truncated page file: half the last page is gone.
        check("trunc.clh", &good[..good.len() - 32], "truncated");
        // Torn header: the file ends inside page 0.
        check("torn.clh", &good[..40], "truncated header");
        // Wrong magic.
        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xff;
        check("magic.clh", &bad_magic, "bad magic");
        // Version from the future, header re-checksummed so the
        // version check itself fires.
        let mut future = good.clone();
        future[4..8].copy_from_slice(&99u32.to_le_bytes());
        let sum = fnv1a(&future[..64 - CHECKSUM_LEN]);
        future[64 - CHECKSUM_LEN..64].copy_from_slice(&sum.to_le_bytes());
        check("future.clh", &future, "format version 99, expected 1");
        // Bit flip in a data page: caught by that page's checksum.
        let mut flipped = good.clone();
        flipped[64 + 24] ^= 0x40;
        check("flip.clh", &flipped, "checksum mismatch");
        // A data page transplanted over another: self-describing page
        // numbers catch the tear even though the checksum passes.
        let mut swapped = good.clone();
        let page2 = swapped[128..192].to_vec();
        swapped[64..128].copy_from_slice(&page2);
        check("swap.clh", &swapped, "carries number");
        // Trailing bytes after the last page.
        let mut padded = good.clone();
        padded.extend_from_slice(b"junk");
        check("padded.clh", &padded, "trailing bytes");

        let snap = clio_obs::snapshot();
        clio_obs::set_metrics_enabled(false);
        assert_eq!(snap.get(Counter::PagerLoadErrors), expected_errors);

        // The untouched file still reads perfectly after all of that.
        let pager = Pager::new(4);
        let file = pager.open(&path).unwrap();
        assert_eq!(read_all(&pager, file), recs);
    }

    #[test]
    fn no_tmp_files_left_behind() {
        let _guard = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        let dir = tmp_dir("tmp");
        build_heap(&dir, "a.clh", 64, &records(3, 50));
        // An abandoned writer cleans up its tmp file on drop.
        let w = HeapWriter::create(&dir.join("b.clh"), 64).unwrap();
        drop(w);
        let stray: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with(".tmp-"))
            .collect();
        assert!(stray.is_empty(), "stray tmp files: {stray:?}");
        assert!(!dir.join("b.clh").exists(), "unfinished heap not renamed");
    }

    #[test]
    fn writer_rejects_bad_page_sizes() {
        let _guard = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        let dir = tmp_dir("badsize");
        assert!(HeapWriter::create(&dir.join("x.clh"), 8).is_err());
        assert!(HeapWriter::create(&dir.join("x.clh"), MAX_PAGE_SIZE + 1).is_err());
    }

    #[test]
    fn one_pool_serves_many_files() {
        let _guard = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        let dir = tmp_dir("multi");
        let a = build_heap(&dir, "a.clh", 64, &records(4, 90));
        let b = build_heap(&dir, "b.clh", 64, &records(4, 70));
        let pager = Pager::new(3);
        let fa = pager.open(&a).unwrap();
        let fb = pager.open(&b).unwrap();
        // Interleaved scans across files share the one budget.
        let ra: Vec<_> = read_all(&pager, fa);
        let rb: Vec<_> = read_all(&pager, fb);
        assert_eq!(ra, records(4, 90));
        assert_eq!(rb, records(4, 70));
    }
}
