//! Synthetic schema, data, and mapping generators for benchmarks and
//! property tests.
//!
//! Workloads are parameterized by graph **topology** (chain, star, cycle,
//! random tree), relation count, row count, and a **match rate** that
//! controls how often a link attribute references an existing tuple —
//! which in turn controls which coverage categories of the full
//! disjunction are populated (low match rates produce many partial
//! associations, stressing subsumption removal).

use clio_core::correspondence::ValueCorrespondence;
use clio_core::knowledge::{JoinSpec, Provenance, SchemaKnowledge};
use clio_core::mapping::Mapping;
use clio_core::query_graph::{Node, QueryGraph};
use clio_relational::database::Database;
use clio_relational::relation::RelationBuilder;
use clio_relational::schema::{Attribute, RelSchema};
use clio_relational::value::{DataType, Value};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Shape of the synthetic query graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// `R0 — R1 — … — R(n-1)`.
    Chain,
    /// `R0` is the hub; every other relation links to it.
    Star,
    /// A chain with the ends joined (cyclic graph: exercises the naive
    /// full-disjunction path).
    Cycle,
    /// A uniformly random tree (each `R_i`, `i > 0`, links to a random
    /// earlier relation).
    RandomTree,
}

/// Workload parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticSpec {
    /// Graph shape.
    pub topology: Topology,
    /// Number of relations (graph nodes). 2–16 is the useful range.
    pub relations: usize,
    /// Rows per relation.
    pub rows: usize,
    /// Probability that a link attribute references an existing tuple of
    /// the linked relation (the rest dangle or are null).
    pub match_rate: f64,
    /// Extra payload attributes per relation.
    pub payload_attrs: usize,
    /// RNG seed (generation is deterministic given the spec).
    pub seed: u64,
}

impl SyntheticSpec {
    /// A reasonable default for quick tests.
    #[must_use]
    pub fn small(topology: Topology) -> SyntheticSpec {
        SyntheticSpec {
            topology,
            relations: 4,
            rows: 50,
            match_rate: 0.8,
            payload_attrs: 1,
            seed: 42,
        }
    }
}

/// A generated workload: database + query graph + knowledge + mapping.
#[derive(Debug, Clone)]
pub struct Synthetic {
    /// The populated source database.
    pub db: Database,
    /// The query graph over it (one node per relation).
    pub graph: QueryGraph,
    /// Knowledge seeded with the graph's edges.
    pub knowledge: SchemaKnowledge,
    /// A target schema with one attribute per relation's payload.
    pub target: RelSchema,
    /// A complete mapping (identity correspondences, `B0` required).
    pub mapping: Mapping,
}

/// The edge list of a topology over `n` relations, as `(a, b)` pairs with
/// `a < b` (the higher-numbered relation holds the link attribute `l<a>`).
#[must_use]
pub fn edges_for(topology: Topology, n: usize, seed: u64) -> Vec<(usize, usize)> {
    match topology {
        Topology::Chain => (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect(),
        Topology::Star => (1..n).map(|i| (0, i)).collect(),
        Topology::Cycle => {
            let mut e: Vec<(usize, usize)> = (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect();
            if n > 2 {
                e.push((0, n - 1));
            }
            e
        }
        Topology::RandomTree => {
            let mut rng = StdRng::seed_from_u64(seed ^ 0x7ee5);
            (1..n).map(|i| (rng.random_range(0..i), i)).collect()
        }
    }
}

/// Generate the full workload for a spec.
///
/// # Panics
/// Panics when `relations == 0` (an empty workload is meaningless).
#[must_use]
pub fn generate(spec: &SyntheticSpec) -> Synthetic {
    assert!(spec.relations > 0, "need at least one relation");
    let n = spec.relations;
    let edges = edges_for(spec.topology, n, spec.seed);
    let mut rng = StdRng::seed_from_u64(spec.seed);

    // schema: R<i>(id, l<a>.., p0..)
    let mut db = Database::new();
    for i in 0..n {
        let mut b = RelationBuilder::new(format!("R{i}")).attr_not_null("id", DataType::Str);
        for &(a, bb) in &edges {
            if bb == i {
                b = b.attr(format!("l{a}"), DataType::Str);
            }
        }
        for p in 0..spec.payload_attrs {
            b = b.attr(format!("p{p}"), DataType::Str);
        }
        db.add_relation(b.build().expect("fresh synthetic schema"))
            .expect("unique name");
    }

    // data
    for i in 0..n {
        let link_sources: Vec<usize> = edges
            .iter()
            .filter(|&&(_, bb)| bb == i)
            .map(|&(a, _)| a)
            .collect();
        for k in 0..spec.rows {
            let mut row: Vec<Value> = vec![Value::str(format!("r{i}-{k}"))];
            for &a in &link_sources {
                let roll: f64 = rng.random();
                if roll < spec.match_rate {
                    let j = rng.random_range(0..spec.rows);
                    row.push(Value::str(format!("r{a}-{j}")));
                } else if roll < spec.match_rate + (1.0 - spec.match_rate) / 2.0 {
                    row.push(Value::Null);
                } else {
                    row.push(Value::str(format!("dangling-{i}-{k}-{a}")));
                }
            }
            for p in 0..spec.payload_attrs {
                row.push(Value::str(format!("v{p}-{}", rng.random_range(0..1000))));
            }
            db.relation_mut(&format!("R{i}"))
                .expect("exists")
                .insert(row)
                .expect("valid row");
        }
    }

    // query graph + knowledge
    let mut graph = QueryGraph::new();
    for i in 0..n {
        graph
            .add_node(Node::new(format!("R{i}")))
            .expect("fresh alias");
    }
    let mut knowledge = SchemaKnowledge::new();
    for &(a, b) in &edges {
        let pred = clio_relational::expr::Expr::col_eq(&format!("R{b}.l{a}"), &format!("R{a}.id"));
        graph.add_edge(a, b, pred).expect("valid edge");
        knowledge.add_spec(JoinSpec::simple(
            format!("R{b}"),
            format!("l{a}"),
            format!("R{a}"),
            "id",
            Provenance::ForeignKey,
        ));
    }

    // target + mapping: B<i> <- R<i>.p0 (or id when no payload)
    let mut attrs = vec![Attribute::not_null("B0", DataType::Str)];
    for i in 1..n {
        attrs.push(Attribute::new(format!("B{i}"), DataType::Str));
    }
    let target = RelSchema::new("T", attrs).expect("fresh target");
    let mut mapping = Mapping::new(graph.clone(), target.clone());
    for i in 0..n {
        let src = if spec.payload_attrs > 0 {
            format!("R{i}.p0")
        } else {
            format!("R{i}.id")
        };
        mapping.set_correspondence(ValueCorrespondence::identity(
            &src,
            if i == 0 {
                "B0".to_owned()
            } else {
                format!("B{i}")
            },
        ));
    }
    let mapping = mapping.with_target_not_null_filters();

    Synthetic {
        db,
        graph,
        knowledge,
        target,
        mapping,
    }
}

/// A knowledge graph alone (no data): `relations` nodes named `R<i>`,
/// connected as a random tree plus `extra_specs` random additional specs.
/// Used by the data-walk scaling benchmark (B4).
#[must_use]
pub fn random_knowledge(relations: usize, extra_specs: usize, seed: u64) -> SchemaKnowledge {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut k = SchemaKnowledge::new();
    for i in 1..relations {
        let parent = rng.random_range(0..i);
        k.add_spec(JoinSpec::simple(
            format!("R{i}"),
            format!("l{parent}"),
            format!("R{parent}"),
            "id",
            Provenance::ForeignKey,
        ));
    }
    let mut added = 0;
    while added < extra_specs && relations >= 2 {
        let a = rng.random_range(0..relations);
        let b = rng.random_range(0..relations);
        if a == b {
            continue;
        }
        k.add_spec(JoinSpec::simple(
            format!("R{a}"),
            format!("x{added}"),
            format!("R{b}"),
            "id",
            Provenance::Mined,
        ));
        added += 1;
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use clio_core::full_disjunction::{full_disjunction, FdAlgo};
    use clio_relational::funcs::FuncRegistry;

    #[test]
    fn edges_match_topologies() {
        assert_eq!(
            edges_for(Topology::Chain, 4, 0),
            vec![(0, 1), (1, 2), (2, 3)]
        );
        assert_eq!(
            edges_for(Topology::Star, 4, 0),
            vec![(0, 1), (0, 2), (0, 3)]
        );
        assert_eq!(
            edges_for(Topology::Cycle, 4, 0),
            vec![(0, 1), (1, 2), (2, 3), (0, 3)]
        );
        let tree = edges_for(Topology::RandomTree, 6, 7);
        assert_eq!(tree.len(), 5);
        for (a, b) in tree {
            assert!(a < b);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = SyntheticSpec::small(Topology::Chain);
        let a = generate(&spec);
        let b = generate(&spec);
        assert_eq!(a.db, b.db);
        assert_eq!(a.graph, b.graph);
    }

    #[test]
    fn generated_workload_is_consistent() {
        for topology in [
            Topology::Chain,
            Topology::Star,
            Topology::Cycle,
            Topology::RandomTree,
        ] {
            let spec = SyntheticSpec::small(topology);
            let w = generate(&spec);
            let funcs = FuncRegistry::with_builtins();
            w.graph.validate(&w.db, &funcs).unwrap();
            w.mapping.validate(&w.db, &funcs).unwrap();
            assert_eq!(w.db.relation_count(), spec.relations);
            assert_eq!(w.db.total_rows(), spec.relations * spec.rows);
        }
    }

    #[test]
    fn tree_topologies_admit_outer_join_fd() {
        for topology in [Topology::Chain, Topology::Star, Topology::RandomTree] {
            let w = generate(&SyntheticSpec::small(topology));
            assert!(w.graph.is_tree(), "{topology:?}");
        }
        let w = generate(&SyntheticSpec::small(Topology::Cycle));
        assert!(!w.graph.is_tree());
    }

    #[test]
    fn fd_and_mapping_eval_run_end_to_end() {
        let mut spec = SyntheticSpec::small(Topology::Chain);
        spec.rows = 30;
        let w = generate(&spec);
        let funcs = FuncRegistry::with_builtins();
        let d = full_disjunction(&w.db, &w.graph, FdAlgo::Auto, &funcs).unwrap();
        assert!(!d.is_empty());
        let out = w.mapping.evaluate(&w.db, &funcs).unwrap();
        assert!(!out.is_empty());
    }

    #[test]
    fn low_match_rate_produces_partial_coverages() {
        let spec = SyntheticSpec {
            topology: Topology::Chain,
            relations: 3,
            rows: 40,
            match_rate: 0.2,
            payload_attrs: 1,
            seed: 7,
        };
        let w = generate(&spec);
        let funcs = FuncRegistry::with_builtins();
        let d = full_disjunction(&w.db, &w.graph, FdAlgo::Auto, &funcs).unwrap();
        assert!(
            d.categories().len() > 1,
            "expected several coverage categories"
        );
    }

    #[test]
    fn random_knowledge_is_connected_tree_plus_extras() {
        let k = random_knowledge(10, 5, 3);
        assert!(k.specs().len() >= 9);
        assert!(k.specs().len() <= 14);
        // paths exist between arbitrary pairs through the tree
        assert!(!k.paths("R0", "R9", 10).is_empty());
    }
}
