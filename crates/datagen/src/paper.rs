//! The reconstructed paper dataset (Figure 1) and the mappings of the
//! running example.
//!
//! The SIGMOD-2001 paper's figures are partly unreadable in the available
//! text, so the instance below is *reconstructed* to satisfy every fact
//! the prose asserts:
//!
//! * Maya is child `002`, under 7, and the user's focus example (Sec 2);
//! * the children of Figure 9's focus are `001`, `002`, `004`, `009`;
//! * `Children.mid` and `Children.fid` are foreign keys to `Parents.ID`
//!   (Sec 2: "Clio is aware of two foreign keys, mid and fid");
//! * "there are no parents in the database who have children and no
//!   phone", so no association has coverage `CP` (Example 4.3) — in fact
//!   every parent has a phone here, matching Figure 9's categories;
//! * every child has a father, so no association has coverage `C`, and
//!   consequently none has `CPS` (Example 4.3);
//! * chasing `002` finds it in **one** attribute of `SBPS` and **two**
//!   attributes of the Christmas-bazaar relation (Sec 2 / Figure 5);
//! * two children ride the school bus, so Figure 9's `CPPhS` category has
//!   two members and stays sufficient when one is dropped (Example 4.3);
//! * parent `205` is childless (Example 4.8 focuses *away* from it);
//! * `Parents.salary` exists for the `FamilyIncome` correspondence
//!   (Example 3.2), `Parents.address` for the Section-2 SQL, and
//!   `PhoneDir.type`/`number` for the `concat` correspondence of
//!   Example 3.15;
//! * one child (`004`, Tom) is motherless, driving Example 6.1's
//!   complementary-filter scenario; one child (`009`, Ben) is 9 years
//!   old, trimmed by the `Children.age < 7` filter of Example 3.13.

use clio_core::correspondence::ValueCorrespondence;
use clio_core::knowledge::SchemaKnowledge;
use clio_core::mapping::Mapping;
use clio_core::query_graph::{Node, QueryGraph};
use clio_relational::constraints::{ForeignKey, Key};
use clio_relational::database::Database;
use clio_relational::parser::parse_expr;
use clio_relational::relation::RelationBuilder;
use clio_relational::schema::{Attribute, RelSchema};
use clio_relational::value::{DataType, Value};

/// Build the Figure-1 source database.
///
/// # Panics
/// Never — the instance is static and valid by construction.
#[must_use]
pub fn paper_database() -> Database {
    let mut db = Database::new();

    db.add_relation(
        RelationBuilder::new("Children")
            .attr_not_null("ID", DataType::Str)
            .attr("name", DataType::Str)
            .attr("age", DataType::Int)
            .attr("mid", DataType::Str)
            .attr("fid", DataType::Str)
            .attr("docid", DataType::Str)
            .row(vec![
                "001".into(),
                "Anna".into(),
                6i64.into(),
                "201".into(),
                "202".into(),
                "D1".into(),
            ])
            .row(vec![
                "002".into(),
                "Maya".into(),
                4i64.into(),
                "203".into(),
                "204".into(),
                "D2".into(),
            ])
            .row(vec![
                "004".into(),
                "Tom".into(),
                5i64.into(),
                Value::Null,
                "202".into(),
                "D3".into(),
            ])
            .row(vec![
                "009".into(),
                "Ben".into(),
                9i64.into(),
                "206".into(),
                "207".into(),
                "D4".into(),
            ])
            .build()
            .expect("static Children relation"),
    )
    .expect("fresh name");

    db.add_relation(
        RelationBuilder::new("Parents")
            .attr_not_null("ID", DataType::Str)
            .attr("affiliation", DataType::Str)
            .attr("address", DataType::Str)
            .attr("salary", DataType::Int)
            .row(vec![
                "201".into(),
                "IBM".into(),
                "12 Oak St".into(),
                90_000i64.into(),
            ])
            .row(vec![
                "202".into(),
                "UofT".into(),
                "12 Oak St".into(),
                85_000i64.into(),
            ])
            .row(vec![
                "203".into(),
                "Almaden".into(),
                "7 Pine Rd".into(),
                95_000i64.into(),
            ])
            .row(vec![
                "204".into(),
                "AT&T".into(),
                "7 Pine Rd".into(),
                88_000i64.into(),
            ])
            .row(vec![
                "205".into(),
                "MIT".into(),
                "9 Maple Ave".into(),
                99_000i64.into(),
            ])
            .row(vec![
                "206".into(),
                "Acme".into(),
                "3 Elm Ct".into(),
                70_000i64.into(),
            ])
            .row(vec![
                "207".into(),
                "Initech".into(),
                "3 Elm Ct".into(),
                72_000i64.into(),
            ])
            .build()
            .expect("static Parents relation"),
    )
    .expect("fresh name");

    db.add_relation(
        RelationBuilder::new("PhoneDir")
            .attr_not_null("ID", DataType::Str)
            .attr("type", DataType::Str)
            .attr("number", DataType::Str)
            .row(vec!["201".into(), "home".into(), "555-0101".into()])
            .row(vec!["202".into(), "work".into(), "555-0102".into()])
            .row(vec!["203".into(), "home".into(), "555-0103".into()])
            .row(vec!["204".into(), "work".into(), "555-0104".into()])
            .row(vec!["205".into(), "home".into(), "555-0105".into()])
            .row(vec!["206".into(), "home".into(), "555-0106".into()])
            .row(vec!["207".into(), "work".into(), "555-0107".into()])
            .build()
            .expect("static PhoneDir relation"),
    )
    .expect("fresh name");

    // "School Bus Pickup Schedule" — the cryptically named relation
    db.add_relation(
        RelationBuilder::new("SBPS")
            .attr_not_null("ID", DataType::Str)
            .attr_not_null("time", DataType::Str)
            .attr("location", DataType::Str)
            .row(vec!["001".into(), "8:05".into(), "Oak & 2nd".into()])
            .row(vec!["002".into(), "8:15".into(), "Main & 1st".into()])
            .build()
            .expect("static SBPS relation"),
    )
    .expect("fresh name");

    db.add_relation(
        RelationBuilder::new("XmasBazaar")
            .attr("seller", DataType::Str)
            .attr("buyer", DataType::Str)
            .attr("item", DataType::Str)
            .row(vec!["002".into(), "001".into(), "cookies".into()])
            .row(vec!["009".into(), "002".into(), "wreath".into()])
            .build()
            .expect("static XmasBazaar relation"),
    )
    .expect("fresh name");

    db.constraints.keys.extend([
        Key::new("Children", vec!["ID"]),
        Key::new("Parents", vec!["ID"]),
        Key::new("PhoneDir", vec!["ID"]),
    ]);
    db.constraints.foreign_keys.extend([
        ForeignKey::simple("Children", "mid", "Parents", "ID"),
        ForeignKey::simple("Children", "fid", "Parents", "ID"),
        ForeignKey::simple("PhoneDir", "ID", "Parents", "ID"),
    ]);
    db
}

/// The target relation `Kids` (Figure 2(c) plus the attributes later
/// examples introduce).
#[must_use]
pub fn kids_target() -> RelSchema {
    RelSchema::new(
        "Kids",
        vec![
            Attribute::not_null("ID", DataType::Str),
            Attribute::new("name", DataType::Str),
            Attribute::new("affiliation", DataType::Str),
            Attribute::new("address", DataType::Str),
            Attribute::new("contactPh", DataType::Str),
            Attribute::new("BusSchedule", DataType::Str),
            Attribute::new("FamilyIncome", DataType::Int),
        ],
    )
    .expect("static Kids schema")
}

/// Clio's schema knowledge for the paper database: the three declared
/// foreign keys (data walks search these; the `SBPS` link is *not* here —
/// it is discovered by the Figure-5 data chase).
#[must_use]
pub fn paper_knowledge() -> SchemaKnowledge {
    SchemaKnowledge::from_database(&paper_database())
}

/// The running query graph used from Example 3.15 onwards:
/// `Children —(fid)— Parents —(ID)— PhoneDir`, plus
/// `Children —(ID)— SBPS`.
///
/// # Panics
/// Never — the graph is static and valid.
#[must_use]
pub fn running_graph() -> QueryGraph {
    let mut g = QueryGraph::new();
    let c = g.add_node(Node::new("Children")).expect("fresh alias");
    let p = g.add_node(Node::new("Parents")).expect("fresh alias");
    let ph = g
        .add_node(Node::new("PhoneDir").with_code("Ph"))
        .expect("fresh alias");
    let s = g
        .add_node(Node::new("SBPS").with_code("S"))
        .expect("fresh alias");
    g.add_edge(
        c,
        p,
        parse_expr("Children.fid = Parents.ID").expect("static"),
    )
    .expect("valid edge");
    g.add_edge(
        p,
        ph,
        parse_expr("PhoneDir.ID = Parents.ID").expect("static"),
    )
    .expect("valid edge");
    g.add_edge(c, s, parse_expr("Children.ID = SBPS.ID").expect("static"))
        .expect("valid edge");
    g
}

/// The Figure-6 path graph `Children — Parents — PhoneDir` (Examples 3.4,
/// 3.12), joined on `mid`.
#[must_use]
pub fn figure6_graph() -> QueryGraph {
    let mut g = QueryGraph::new();
    let c = g.add_node(Node::new("Children")).expect("fresh alias");
    let p = g.add_node(Node::new("Parents")).expect("fresh alias");
    let ph = g
        .add_node(Node::new("PhoneDir").with_code("Ph"))
        .expect("fresh alias");
    g.add_edge(
        c,
        p,
        parse_expr("Children.mid = Parents.ID").expect("static"),
    )
    .expect("valid edge");
    g.add_edge(
        p,
        ph,
        parse_expr("PhoneDir.ID = Parents.ID").expect("static"),
    )
    .expect("valid edge");
    g
}

/// The Example-3.15 mapping: the running graph with correspondences
/// `v1..v5` (including `concat(Ph.type, ',', Ph.number)`), the source
/// filter `Children.age < 7`, and the target filter
/// `Kids.ID IS NOT NULL`.
#[must_use]
pub fn example_3_15_mapping() -> Mapping {
    Mapping::new(running_graph(), kids_target())
        .with_correspondence(ValueCorrespondence::identity("Children.ID", "ID"))
        .with_correspondence(ValueCorrespondence::identity("Children.name", "name"))
        .with_correspondence(ValueCorrespondence::identity(
            "Parents.affiliation",
            "affiliation",
        ))
        .with_correspondence(
            ValueCorrespondence::parse("concat(PhoneDir.type, ',', PhoneDir.number)", "contactPh")
                .expect("static expression"),
        )
        .with_correspondence(ValueCorrespondence::identity("SBPS.time", "BusSchedule"))
        .with_source_filter(parse_expr("Children.age < 7").expect("static"))
        .with_target_not_null_filters()
}

/// The final Section-2 mapping behind the generated `CREATE VIEW Kids`
/// query: father (`Parents`, via `fid`) supplies affiliation and address,
/// mother (`Parents2`, via `mid`) supplies the contact phone (the user
/// chose Scenario 2 in Figure 4), and `SBPS` the bus schedule.
#[must_use]
pub fn section2_mapping() -> Mapping {
    let mut g = QueryGraph::new();
    let c = g.add_node(Node::new("Children")).expect("fresh alias");
    let p = g.add_node(Node::new("Parents")).expect("fresh alias");
    let p2 = g
        .add_node(Node::copy_of("Parents2", "Parents"))
        .expect("fresh alias");
    let ph = g
        .add_node(Node::new("PhoneDir").with_code("Ph"))
        .expect("fresh alias");
    let s = g
        .add_node(Node::new("SBPS").with_code("S"))
        .expect("fresh alias");
    g.add_edge(
        c,
        p,
        parse_expr("Children.fid = Parents.ID").expect("static"),
    )
    .expect("valid edge");
    g.add_edge(
        c,
        p2,
        parse_expr("Children.mid = Parents2.ID").expect("static"),
    )
    .expect("valid edge");
    g.add_edge(
        p2,
        ph,
        parse_expr("PhoneDir.ID = Parents2.ID").expect("static"),
    )
    .expect("valid edge");
    g.add_edge(c, s, parse_expr("Children.ID = SBPS.ID").expect("static"))
        .expect("valid edge");

    Mapping::new(g, kids_target())
        .with_correspondence(ValueCorrespondence::identity("Children.ID", "ID"))
        .with_correspondence(ValueCorrespondence::identity("Children.name", "name"))
        .with_correspondence(ValueCorrespondence::identity(
            "Parents.affiliation",
            "affiliation",
        ))
        .with_correspondence(ValueCorrespondence::identity("Parents.address", "address"))
        .with_correspondence(ValueCorrespondence::identity(
            "PhoneDir.number",
            "contactPh",
        ))
        .with_correspondence(ValueCorrespondence::identity("SBPS.time", "BusSchedule"))
        .with_correspondence(
            ValueCorrespondence::parse("Parents.salary + Parents2.salary", "FamilyIncome")
                .expect("static expression"),
        )
        .with_target_not_null_filters()
}

#[cfg(test)]
mod tests {
    use super::*;
    use clio_core::full_disjunction::{full_disjunction, FdAlgo};
    use clio_relational::funcs::FuncRegistry;
    use clio_relational::index::ValueIndex;

    fn funcs() -> FuncRegistry {
        FuncRegistry::with_builtins()
    }

    #[test]
    fn database_satisfies_its_own_constraints() {
        paper_database().check_constraints().unwrap();
    }

    #[test]
    fn maya_is_002_and_under_seven() {
        let db = paper_database();
        let maya = db
            .relation("Children")
            .unwrap()
            .rows_where("ID", &Value::str("002"))
            .unwrap();
        assert_eq!(maya.len(), 1);
        assert_eq!(maya[0][1], Value::str("Maya"));
        assert_eq!(maya[0][2], Value::Int(4));
    }

    #[test]
    fn every_parent_with_children_has_a_phone() {
        // Example 4.3: coverage CP must be empty
        let db = paper_database();
        let children = db.relation("Children").unwrap();
        let phones = db.relation("PhoneDir").unwrap();
        for row in children.rows() {
            for idx in [3usize, 4] {
                let pid = &row[idx];
                if pid.is_null() {
                    continue;
                }
                assert!(
                    !phones.rows_where("ID", pid).unwrap().is_empty(),
                    "parent {pid} of child {} has no phone",
                    row[0]
                );
            }
        }
    }

    #[test]
    fn every_child_has_a_father() {
        // Example 4.3: coverage C must be empty (the running graph joins
        // on fid)
        let db = paper_database();
        for row in db.relation("Children").unwrap().rows() {
            assert!(!row[4].is_null(), "child {} has no father", row[0]);
        }
    }

    #[test]
    fn value_002_occurrence_sites_match_figure_5() {
        let db = paper_database();
        let idx = ValueIndex::build(&db);
        let sites = idx.occurrence_sites(&Value::str("002"));
        let external: Vec<_> = sites
            .iter()
            .filter(|(r, _)| r != "Children" && r != "Parents" && r != "PhoneDir")
            .collect();
        assert_eq!(external.len(), 3);
        assert!(external.iter().filter(|(r, _)| r == "SBPS").count() == 1);
        assert!(external.iter().filter(|(r, _)| r == "XmasBazaar").count() == 2);
    }

    #[test]
    fn running_graph_categories_match_example_4_3() {
        let db = paper_database();
        let g = running_graph();
        let d = full_disjunction(&db, &g, FdAlgo::Auto, &funcs()).unwrap();
        let tags: Vec<String> = d.categories().iter().map(|&c| g.coverage_tag(c)).collect();
        // present: CPPh (kids without bus), CPPhS (kids with bus), PPh
        // (childless parents with phones)
        assert!(tags.contains(&"CPPh".to_owned()));
        assert!(tags.contains(&"CPPhS".to_owned()));
        assert!(tags.contains(&"PPh".to_owned()));
        // absent: CP, C, CPS, P
        for absent in ["CP", "C", "CPS", "P"] {
            assert!(
                !tags.contains(&absent.to_owned()),
                "category {absent} should be empty"
            );
        }
        // two CPPhS members (001 and 002 ride the bus)
        let cpphs_mask = d
            .categories()
            .into_iter()
            .find(|&c| g.coverage_tag(c) == "CPPhS")
            .unwrap();
        assert_eq!(d.in_category(cpphs_mask).len(), 2);
    }

    #[test]
    fn mappings_validate() {
        let db = paper_database();
        example_3_15_mapping().validate(&db, &funcs()).unwrap();
        section2_mapping().validate(&db, &funcs()).unwrap();
    }

    #[test]
    fn example_3_15_trims_ben_by_age() {
        let db = paper_database();
        let out = example_3_15_mapping().evaluate(&db, &funcs()).unwrap();
        let ids: Vec<String> = out.rows().iter().map(|r| r[0].to_string()).collect();
        assert!(ids.contains(&"001".to_owned()));
        assert!(ids.contains(&"002".to_owned()));
        assert!(ids.contains(&"004".to_owned()));
        assert!(
            !ids.contains(&"009".to_owned()),
            "Ben (age 9) must be trimmed"
        );
    }

    #[test]
    fn section2_mapping_fills_every_kid() {
        let db = paper_database();
        let out = section2_mapping().evaluate(&db, &funcs()).unwrap();
        assert_eq!(out.len(), 4);
        // Maya: father's affiliation AT&T, mother's phone 555-0103,
        // bus 8:15, family income 95k + 88k
        let maya = out
            .rows()
            .iter()
            .find(|r| r[0] == Value::str("002"))
            .unwrap();
        assert_eq!(maya[2], Value::str("AT&T"));
        assert_eq!(maya[4], Value::str("555-0103"));
        assert_eq!(maya[5], Value::str("8:15"));
        assert_eq!(maya[6], Value::Int(183_000));
        // Tom is motherless: no contact phone, no family income, but kept
        let tom = out
            .rows()
            .iter()
            .find(|r| r[0] == Value::str("004"))
            .unwrap();
        assert!(tom[4].is_null());
        assert!(tom[6].is_null());
        assert_eq!(tom[2], Value::str("UofT"));
    }

    #[test]
    fn knowledge_has_three_foreign_key_specs() {
        let k = paper_knowledge();
        assert_eq!(k.specs().len(), 3);
        assert_eq!(k.specs_between("Children", "Parents").len(), 2);
        assert!(k.specs_between("Children", "SBPS").is_empty());
    }
}
