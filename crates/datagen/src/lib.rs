//! `clio-datagen` — the reconstructed paper dataset and synthetic
//! workload generators for the Clio reproduction.
#![warn(missing_docs)]

pub mod paper;
pub mod synthetic;
