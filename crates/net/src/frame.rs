//! The wire format: one frame per request and per response.
//!
//! ```text
//! +---------+-------------------+------------------+
//! | version |   payload length  |     payload      |
//! | 1 byte  | u32, big-endian   | UTF-8, length B  |
//! +---------+-------------------+------------------+
//! ```
//!
//! The version byte is [`PROTOCOL_VERSION`]; payloads longer than the
//! receiver's limit (the server uses
//! [`ServerConfig::max_frame_bytes`](crate::ServerConfig), the client
//! [`MAX_FRAME_BYTES`]) are rejected. These helpers are the *blocking*
//! half used by the client; the server reads frames through its own
//! deadline-aware loop in [`crate::server`].

use std::io::{self, Read, Write};

/// Protocol version carried as every frame's first byte.
pub const PROTOCOL_VERSION: u8 = 1;

/// Largest payload either side accepts by default (1 MiB).
pub const MAX_FRAME_BYTES: usize = 1 << 20;

fn invalid(message: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

/// Write one frame: version byte, big-endian length, payload, flush.
///
/// # Errors
///
/// Propagates I/O errors; a payload over `u32::MAX` bytes is
/// `InvalidInput`.
pub fn write_frame(w: &mut impl Write, payload: &str) -> io::Result<()> {
    let len = u32::try_from(payload.len()).map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame payload exceeds u32::MAX bytes",
        )
    })?;
    w.write_all(&[PROTOCOL_VERSION])?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload.as_bytes())?;
    w.flush()
}

/// Read one frame, blocking until it arrives. `Ok(None)` means the
/// peer closed the connection cleanly before a frame started.
///
/// # Errors
///
/// A wrong version byte, a declared length over `max_bytes`, a
/// non-UTF-8 payload, or EOF inside a frame is `InvalidData`; transport
/// failures propagate as-is.
pub fn read_frame(r: &mut impl Read, max_bytes: usize) -> io::Result<Option<String>> {
    let mut version = [0u8; 1];
    loop {
        match r.read(&mut version) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    if version[0] != PROTOCOL_VERSION {
        return Err(invalid(format!(
            "unsupported protocol version 0x{:02x}",
            version[0]
        )));
    }
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)
        .map_err(|_| invalid("truncated frame header".into()))?;
    let len = u32::from_be_bytes(len_bytes) as usize;
    if len > max_bytes {
        return Err(invalid(format!(
            "frame length {len} exceeds the {max_bytes}-byte limit"
        )));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)
        .map_err(|_| invalid("truncated frame payload".into()))?;
    match String::from_utf8(payload) {
        Ok(text) => Ok(Some(text)),
        Err(_) => Err(invalid("frame payload is not valid UTF-8".into())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "corr Children.ID -> ID").unwrap();
        assert_eq!(buf[0], PROTOCOL_VERSION);
        let mut r = buf.as_slice();
        let got = read_frame(&mut r, MAX_FRAME_BYTES).unwrap();
        assert_eq!(got.as_deref(), Some("corr Children.ID -> ID"));
        assert_eq!(read_frame(&mut r, MAX_FRAME_BYTES).unwrap(), None, "EOF");
    }

    #[test]
    fn empty_payload_round_trips() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "").unwrap();
        let got = read_frame(&mut buf.as_slice(), MAX_FRAME_BYTES).unwrap();
        assert_eq!(got.as_deref(), Some(""));
    }

    #[test]
    fn bad_version_and_truncation_are_invalid_data() {
        let err = read_frame(&mut [0xffu8, 0, 0, 0, 0].as_slice(), 16).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("0xff"), "{err}");

        let err = read_frame(&mut [PROTOCOL_VERSION, 0, 0].as_slice(), 16).unwrap_err();
        assert!(err.to_string().contains("truncated frame header"), "{err}");

        let mut torn = Vec::new();
        write_frame(&mut torn, "hello").unwrap();
        torn.truncate(torn.len() - 2);
        let err = read_frame(&mut torn.as_slice(), 16).unwrap_err();
        assert!(err.to_string().contains("truncated frame payload"), "{err}");
    }

    #[test]
    fn oversized_and_non_utf8_are_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "0123456789").unwrap();
        let err = read_frame(&mut buf.as_slice(), 4).unwrap_err();
        assert!(
            err.to_string().contains("exceeds the 4-byte limit"),
            "{err}"
        );

        let bad = [PROTOCOL_VERSION, 0, 0, 0, 2, 0xc3, 0x28];
        let err = read_frame(&mut bad.as_slice(), 16).unwrap_err();
        assert!(err.to_string().contains("not valid UTF-8"), "{err}");
    }
}
