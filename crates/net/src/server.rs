//! Thread-per-connection framed TCP server.
//!
//! [`Server::run`] accepts connections on a nonblocking listener and
//! spawns one scoped thread per connection, capped at
//! [`ServerConfig::max_conns`] (excess connections wait in the OS
//! accept backlog — backpressure, not rejection). Each connection gets
//! a fresh [`Handler`] from the caller's factory, a `conn.<n>` obs
//! session label so per-connection counters and histograms mirror for
//! free, and a per-request idle deadline. Malformed frames are answered
//! with a one-line `error: ...` frame and the connection continues
//! (truncated frames close it — the stream can no longer be trusted);
//! idle timeouts close the connection after an error frame. A client
//! sending the `shutdown` command stops the whole server: the listener
//! stops accepting, in-flight requests finish, and `run` returns once
//! every connection thread has drained.
//!
//! All error paths report through `clio_obs::warn_limited` under
//! `net.*` categories, so a flapping client cannot flood stderr.

use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use clio_obs::metrics::{self, Counter};
use clio_obs::{hist, warn_limited};

use crate::frame;

/// How often the accept loop polls the nonblocking listener (and the
/// shutdown flag) when nothing is happening.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Per-connection socket read timeout: the granularity at which a
/// blocked read notices the idle deadline or a server shutdown.
const READ_POLL: Duration = Duration::from_millis(25);

/// Span names for the first few connections (the same bounded-static
/// pattern as `SessionPool`'s `session.<i>` spans).
const CONN_SPAN_NAMES: [&str; 16] = [
    "conn.0", "conn.1", "conn.2", "conn.3", "conn.4", "conn.5", "conn.6", "conn.7", "conn.8",
    "conn.9", "conn.10", "conn.11", "conn.12", "conn.13", "conn.14", "conn.15",
];

fn conn_span_name(id: u64) -> &'static str {
    usize::try_from(id)
        .ok()
        .and_then(|i| CONN_SPAN_NAMES.get(i).copied())
        .unwrap_or("conn.overflow")
}

/// Knobs for [`Server::run`]. `Default` is 4 connections, a 30-second
/// idle timeout, and the protocol's 1 MiB frame limit.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Concurrent-connection cap: at the cap the listener stops
    /// accepting until a connection closes (clamped to at least 1).
    pub max_conns: usize,
    /// Close a connection (after an error frame) when a full request
    /// frame has not arrived within this window.
    pub idle_timeout: Duration,
    /// Largest request payload accepted; longer declared frames are
    /// drained and answered with an error frame.
    pub max_frame_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            max_conns: 4,
            idle_timeout: Duration::from_secs(30),
            max_frame_bytes: frame::MAX_FRAME_BYTES,
        }
    }
}

/// A handler's answer to one request frame. `clio-cli` builds these
/// from `Shell::execute` outcomes.
#[derive(Debug, Clone)]
pub struct Response {
    /// Response payload, sent back as one frame.
    pub text: String,
    /// Histogram this request's latency is recorded under (the
    /// per-command-kind `net.request.*` names).
    pub hist: &'static str,
    /// Close the connection after responding (the `quit` command).
    pub quit: bool,
}

/// One connection's worth of command dispatch. Implementations are the
/// bridge between the wire and the engine; each connection owns one
/// handler, so implementations can carry per-connection session state
/// without locking.
pub trait Handler: Send {
    /// Execute one command line and produce the response frame.
    fn handle(&mut self, line: &str) -> Response;
}

/// Cloneable stop signal for a running server. Trigger it from another
/// thread (or let a client's `shutdown` command trigger it) and
/// [`Server::run`] drains and returns.
#[derive(Debug, Clone, Default)]
pub struct ShutdownHandle(Arc<AtomicBool>);

impl ShutdownHandle {
    /// Ask the server to stop accepting and drain.
    pub fn shutdown(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether shutdown has been requested.
    #[must_use]
    pub fn is_shutdown(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// A bound listener plus its configuration. Bind with [`Server::bind`],
/// then [`Server::run`] until shutdown.
pub struct Server {
    listener: TcpListener,
    config: ServerConfig,
    stop: ShutdownHandle,
}

impl Server {
    /// Bind a listener. Port 0 picks an ephemeral port — read it back
    /// with [`Server::local_addr`].
    ///
    /// # Errors
    ///
    /// Propagates the bind failure (port in use, permission).
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener,
            config,
            stop: ShutdownHandle::default(),
        })
    }

    /// The bound address (the real port when bound with port 0).
    ///
    /// # Errors
    ///
    /// Propagates the socket-name lookup failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A stop signal for this server, safe to trigger from any thread.
    #[must_use]
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        self.stop.clone()
    }

    /// Accept and serve connections until shutdown, calling `factory`
    /// with the connection id to build each connection's [`Handler`].
    /// Returns only after every connection thread has drained.
    ///
    /// # Errors
    ///
    /// Only setup failures (switching the listener to nonblocking);
    /// per-connection errors degrade that connection and are reported
    /// through rate-limited warnings.
    pub fn run<F>(&self, factory: F) -> io::Result<()>
    where
        F: Fn(u64) -> Box<dyn Handler> + Sync,
    {
        self.listener.set_nonblocking(true)?;
        let active = AtomicUsize::new(0);
        let max_conns = self.config.max_conns.max(1);
        std::thread::scope(|scope| {
            let mut next_id: u64 = 0;
            while !self.stop.is_shutdown() {
                if active.load(Ordering::Relaxed) >= max_conns {
                    std::thread::sleep(ACCEPT_POLL);
                    continue;
                }
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        let id = next_id;
                        next_id += 1;
                        metrics::incr(Counter::NetAccepted);
                        metrics::incr(Counter::NetActive);
                        active.fetch_add(1, Ordering::Relaxed);
                        let handler = factory(id);
                        let active = &active;
                        let config = &self.config;
                        let stop = &self.stop;
                        scope.spawn(move || {
                            serve_connection(&stream, id, handler, config, stop);
                            metrics::sub(Counter::NetActive, 1);
                            active.fetch_sub(1, Ordering::Relaxed);
                        });
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(ACCEPT_POLL);
                    }
                    Err(e) => {
                        warn_limited("net.accept", &format!("accept failed: {e}"));
                        std::thread::sleep(ACCEPT_POLL);
                    }
                }
            }
        });
        Ok(())
    }
}

/// One request's fate, as decoded by [`read_request`].
enum Request {
    /// A well-formed command line.
    Line(String),
    /// A malformed frame the connection survives (bad version byte,
    /// oversized declared length, non-UTF-8 payload).
    Malformed(String),
    /// A frame truncated by EOF: answer best-effort, then close — the
    /// byte stream can no longer be trusted.
    Torn(String),
    /// Nothing arrived within the idle window.
    Idle,
    /// Clean EOF between frames.
    Eof,
    /// The server is shutting down and no request is in flight.
    Shutdown,
    /// Transport failure.
    Io(io::Error),
}

/// Why a deadline-aware read stopped short.
enum Fault {
    Eof { got: usize },
    Idle,
    Shutdown,
    Io(io::Error),
}

/// Fill `buf` from a socket whose read timeout is [`READ_POLL`],
/// honoring the request's idle deadline and the server stop flag
/// between polls.
fn read_full(
    mut stream: &TcpStream,
    buf: &mut [u8],
    deadline: Instant,
    stop: &ShutdownHandle,
) -> Result<(), Fault> {
    let mut got = 0;
    while got < buf.len() {
        match stream.read(&mut buf[got..]) {
            Ok(0) => return Err(Fault::Eof { got }),
            Ok(n) => got += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if stop.is_shutdown() {
                    return Err(Fault::Shutdown);
                }
                if Instant::now() >= deadline {
                    return Err(Fault::Idle);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(Fault::Io(e)),
        }
    }
    Ok(())
}

/// Decode one request frame. The whole frame must arrive within the
/// idle window; a partial prefix when it closes is a torn frame.
fn read_request(stream: &TcpStream, config: &ServerConfig, stop: &ShutdownHandle) -> Request {
    let deadline = Instant::now() + config.idle_timeout;
    let mut version = [0u8; 1];
    match read_full(stream, &mut version, deadline, stop) {
        Ok(()) => {}
        Err(Fault::Eof { .. }) => return Request::Eof,
        Err(Fault::Idle) => return Request::Idle,
        Err(Fault::Shutdown) => return Request::Shutdown,
        Err(Fault::Io(e)) => return Request::Io(e),
    }
    if version[0] != frame::PROTOCOL_VERSION {
        // Resynchronize one byte at a time: each bad byte is answered,
        // so a client that sent garbage sees exactly what went wrong.
        return Request::Malformed(format!("unsupported protocol version 0x{:02x}", version[0]));
    }
    let mut len_bytes = [0u8; 4];
    match read_full(stream, &mut len_bytes, deadline, stop) {
        Ok(()) => {}
        Err(Fault::Eof { .. }) => return Request::Torn("truncated frame header".into()),
        Err(Fault::Idle) => return Request::Idle,
        Err(Fault::Shutdown) => return Request::Shutdown,
        Err(Fault::Io(e)) => return Request::Io(e),
    }
    let len = u32::from_be_bytes(len_bytes) as usize;
    if len > config.max_frame_bytes {
        // Drain the declared payload so the stream stays in sync, then
        // answer with an error frame.
        let mut remaining = len;
        let mut sink = [0u8; 4096];
        while remaining > 0 {
            let want = remaining.min(sink.len());
            match read_full(stream, &mut sink[..want], deadline, stop) {
                Ok(()) => remaining -= want,
                Err(Fault::Eof { .. }) => return Request::Torn("truncated oversized frame".into()),
                Err(Fault::Idle) => return Request::Idle,
                Err(Fault::Shutdown) => return Request::Shutdown,
                Err(Fault::Io(e)) => return Request::Io(e),
            }
        }
        return Request::Malformed(format!(
            "frame length {len} exceeds the {}-byte limit",
            config.max_frame_bytes
        ));
    }
    let mut payload = vec![0u8; len];
    match read_full(stream, &mut payload, deadline, stop) {
        Ok(()) => {}
        Err(Fault::Eof { got }) => {
            return Request::Torn(format!("truncated frame payload ({got} of {len} bytes)"))
        }
        Err(Fault::Idle) => return Request::Idle,
        Err(Fault::Shutdown) => return Request::Shutdown,
        Err(Fault::Io(e)) => return Request::Io(e),
    }
    match String::from_utf8(payload) {
        Ok(line) => Request::Line(line),
        Err(_) => Request::Malformed("frame payload is not valid UTF-8".into()),
    }
}

/// Send one response frame; a failed write means the client went away,
/// which degrades this connection only.
fn send(stream: &TcpStream, id: u64, text: &str) -> bool {
    match frame::write_frame(&mut { stream }, text) {
        Ok(()) => true,
        Err(e) => {
            warn_limited("net.conn", &format!("conn.{id}: write failed: {e}"));
            false
        }
    }
}

/// Serve one connection to completion under its `conn.<n>` obs label.
fn serve_connection(
    stream: &TcpStream,
    id: u64,
    mut handler: Box<dyn Handler>,
    config: &ServerConfig,
    stop: &ShutdownHandle,
) {
    if let Err(e) = stream.set_read_timeout(Some(READ_POLL)) {
        warn_limited(
            "net.conn",
            &format!("conn.{id}: cannot set read timeout: {e}"),
        );
        return;
    }
    stream.set_nodelay(true).ok();
    metrics::set_session_name(id, &format!("conn.{id}"));
    metrics::with_session(Some(id), || {
        metrics::touch_session(id);
        let _span = clio_obs::span(conn_span_name(id));
        connection_loop(stream, id, handler.as_mut(), config, stop);
    });
}

fn connection_loop(
    stream: &TcpStream,
    id: u64,
    handler: &mut dyn Handler,
    config: &ServerConfig,
    stop: &ShutdownHandle,
) {
    loop {
        match read_request(stream, config, stop) {
            Request::Line(line) => {
                metrics::incr(Counter::NetFrames);
                if line.trim() == "shutdown" {
                    // Protocol-level: stop the whole server. Other
                    // connections drain their in-flight requests.
                    send(stream, id, "shutting down\n");
                    stop.shutdown();
                    return;
                }
                let timer = hist::start();
                let response = handler.handle(&line);
                hist::finish(response.hist, timer);
                if !send(stream, id, &response.text) || response.quit {
                    return;
                }
            }
            Request::Malformed(msg) => {
                metrics::incr(Counter::NetFrameErrors);
                warn_limited("net.frame", &format!("conn.{id}: {msg}"));
                if !send(stream, id, &format!("error: {msg}\n")) {
                    return;
                }
            }
            Request::Torn(msg) => {
                metrics::incr(Counter::NetFrameErrors);
                warn_limited("net.frame", &format!("conn.{id}: {msg}, closing"));
                send(stream, id, &format!("error: {msg}\n"));
                return;
            }
            Request::Idle => {
                metrics::incr(Counter::NetTimeouts);
                warn_limited("net.conn", &format!("conn.{id}: idle timeout, closing"));
                send(stream, id, "error: idle timeout, closing connection\n");
                return;
            }
            Request::Eof | Request::Shutdown => return,
            Request::Io(e) => {
                warn_limited("net.conn", &format!("conn.{id}: read failed: {e}"));
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;

    struct Echo;
    impl Handler for Echo {
        fn handle(&mut self, line: &str) -> Response {
            Response {
                text: format!("echo: {line}\n"),
                hist: "net.request.test",
                quit: line == "quit",
            }
        }
    }

    fn test_config() -> ServerConfig {
        ServerConfig {
            max_conns: 4,
            idle_timeout: Duration::from_secs(5),
            max_frame_bytes: 64,
        }
    }

    #[test]
    fn serves_requests_and_drains_on_shutdown() {
        let server = Server::bind("127.0.0.1:0", test_config()).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = server.shutdown_handle();
        std::thread::scope(|s| {
            let run = s.spawn(|| server.run(|_| Box::new(Echo) as Box<dyn Handler>));
            let mut c = Client::connect(addr).unwrap();
            assert_eq!(c.request("hi").unwrap().as_deref(), Some("echo: hi\n"));
            assert_eq!(
                c.request("there").unwrap().as_deref(),
                Some("echo: there\n")
            );
            // quit closes only this connection; the server keeps serving.
            assert_eq!(c.request("quit").unwrap().as_deref(), Some("echo: quit\n"));
            let mut c2 = Client::connect(addr).unwrap();
            assert_eq!(
                c2.request("again").unwrap().as_deref(),
                Some("echo: again\n")
            );
            handle.shutdown();
            run.join().unwrap().unwrap();
        });
    }

    #[test]
    fn shutdown_command_stops_the_server() {
        let server = Server::bind("127.0.0.1:0", test_config()).unwrap();
        let addr = server.local_addr().unwrap();
        std::thread::scope(|s| {
            let run = s.spawn(|| server.run(|_| Box::new(Echo) as Box<dyn Handler>));
            let mut c = Client::connect(addr).unwrap();
            assert_eq!(
                c.request("shutdown").unwrap().as_deref(),
                Some("shutting down\n")
            );
            run.join().unwrap().unwrap();
        });
    }

    #[test]
    fn malformed_frames_get_error_frames_and_the_connection_survives() {
        use std::io::Write;
        let server = Server::bind("127.0.0.1:0", test_config()).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = server.shutdown_handle();
        std::thread::scope(|s| {
            let run = s.spawn(|| server.run(|_| Box::new(Echo) as Box<dyn Handler>));
            let mut raw = std::net::TcpStream::connect(addr).unwrap();
            // A garbage byte is answered per byte.
            raw.write_all(&[0xab]).unwrap();
            let err = frame::read_frame(&mut raw, frame::MAX_FRAME_BYTES)
                .unwrap()
                .unwrap();
            assert_eq!(err, "error: unsupported protocol version 0xab\n");
            // An oversized declared frame is drained and answered.
            raw.write_all(&[frame::PROTOCOL_VERSION]).unwrap();
            raw.write_all(&100u32.to_be_bytes()).unwrap();
            raw.write_all(&[b'x'; 100]).unwrap();
            let err = frame::read_frame(&mut raw, frame::MAX_FRAME_BYTES)
                .unwrap()
                .unwrap();
            assert_eq!(err, "error: frame length 100 exceeds the 64-byte limit\n");
            // The same connection still serves well-formed frames.
            frame::write_frame(&mut raw, "ok").unwrap();
            let resp = frame::read_frame(&mut raw, frame::MAX_FRAME_BYTES)
                .unwrap()
                .unwrap();
            assert_eq!(resp, "echo: ok\n");
            handle.shutdown();
            run.join().unwrap().unwrap();
        });
    }

    #[test]
    fn idle_timeout_closes_the_connection() {
        let config = ServerConfig {
            idle_timeout: Duration::from_millis(100),
            ..test_config()
        };
        let server = Server::bind("127.0.0.1:0", config).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = server.shutdown_handle();
        std::thread::scope(|s| {
            let run = s.spawn(|| server.run(|_| Box::new(Echo) as Box<dyn Handler>));
            let mut c = Client::connect(addr).unwrap();
            // Send nothing: the server times the connection out.
            let msg = c.read_response().unwrap().unwrap();
            assert_eq!(msg, "error: idle timeout, closing connection\n");
            assert_eq!(c.read_response().unwrap(), None, "connection closed");
            handle.shutdown();
            run.join().unwrap().unwrap();
        });
    }
}
