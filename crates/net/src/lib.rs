//! # clio-net — framed TCP front-end for the mapping shell
//!
//! A **std-only** networked session service in three parts:
//!
//! * [`frame`] — the wire format: every request and response is one
//!   frame of `version byte + u32 big-endian payload length + UTF-8
//!   payload`. Request payloads are shell command lines; response
//!   payloads are the shell's output text.
//! * [`server`] — a `TcpListener` front-end running one thread per
//!   connection, capped by [`ServerConfig::max_conns`], with
//!   per-connection idle timeouts and graceful shutdown. The server is
//!   generic over a [`Handler`] so this crate stays independent of the
//!   engine; `clio-cli` supplies the handler that parses and dispatches
//!   commands.
//! * [`client`] — a small blocking client used by `clio connect`,
//!   tests, and experiments to drive a server end-to-end.
//!
//! Protocol details, concurrency model, and the degradation matrix are
//! documented in `docs/service.md`.

#![warn(missing_docs)]

pub mod client;
pub mod frame;
pub mod server;

pub use client::Client;
pub use frame::{read_frame, write_frame, MAX_FRAME_BYTES, PROTOCOL_VERSION};
pub use server::{Handler, Response, Server, ServerConfig, ShutdownHandle};
