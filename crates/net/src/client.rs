//! A small blocking client for the framed protocol, used by
//! `clio connect`, tests, and experiments.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};

use crate::frame;

/// One connection to a running server. Requests are strictly
/// send-one-frame, read-one-frame.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect to a server address (`host:port`).
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client { stream })
    }

    /// Send one command line and block for the response frame.
    /// `Ok(None)` means the server closed the connection.
    ///
    /// # Errors
    ///
    /// Propagates transport failures and malformed response frames
    /// (`InvalidData`).
    pub fn request(&mut self, line: &str) -> io::Result<Option<String>> {
        frame::write_frame(&mut self.stream, line)?;
        self.read_response()
    }

    /// Block for one response frame without sending anything — for
    /// server-initiated messages like the idle-timeout notice.
    ///
    /// # Errors
    ///
    /// Propagates transport failures and malformed response frames.
    pub fn read_response(&mut self) -> io::Result<Option<String>> {
        frame::read_frame(&mut self.stream, frame::MAX_FRAME_BYTES)
    }
}
