//! B6 — end-to-end mapping query evaluation (the WYSIWYG target view):
//! full disjunction + correspondence projection + filters, as a function
//! of data size and graph shape.
//!
//! Expected shape: dominated by the full disjunction; near-linear in rows
//! for tree graphs thanks to hash joins.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use clio_bench::{chain, star};
use clio_relational::funcs::FuncRegistry;

fn bench_rows(c: &mut Criterion) {
    let mut group = c.benchmark_group("mapping_eval_rows");
    let funcs = FuncRegistry::with_builtins();
    for rows in [100usize, 1000, 10_000] {
        let w = chain(4, rows);
        group.bench_with_input(BenchmarkId::from_parameter(rows), &w, |b, w| {
            b.iter(|| black_box(w.mapping.evaluate(&w.db, &funcs).expect("valid").len()));
        });
    }
    group.finish();
}

fn bench_shapes(c: &mut Criterion) {
    let mut group = c.benchmark_group("mapping_eval_shape");
    let funcs = FuncRegistry::with_builtins();
    for (name, w) in [
        ("chain3", chain(3, 1000)),
        ("chain6", chain(6, 1000)),
        ("star5", star(5, 1000)),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &w, |b, w| {
            b.iter(|| black_box(w.mapping.evaluate(&w.db, &funcs).expect("valid").len()));
        });
    }
    group.finish();
}

fn bench_example_generation(c: &mut Criterion) {
    // the examples() path computes target tuples for negatives too
    let mut group = c.benchmark_group("mapping_examples");
    let funcs = FuncRegistry::with_builtins();
    for rows in [100usize, 1000] {
        let w = chain(4, rows);
        group.bench_with_input(BenchmarkId::from_parameter(rows), &w, |b, w| {
            b.iter(|| black_box(w.mapping.examples(&w.db, &funcs).expect("valid").len()));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_rows, bench_shapes, bench_example_generation
}
criterion_main!(benches);
