//! B9 — join ablation: the hash-equijoin fast path vs forcing the
//! nested-loop fallback (by phrasing the same predicate non-equationally).
//!
//! Every full-disjunction and walk evaluation funnels through `join`;
//! this quantifies the design choice of extracting equi-conjuncts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use clio_relational::funcs::FuncRegistry;
use clio_relational::ops::{join, JoinKind};
use clio_relational::parser::parse_expr;
use clio_relational::relation::RelationBuilder;
use clio_relational::table::Table;
use clio_relational::value::DataType;

fn tables(rows: usize) -> (Table, Table) {
    let mut a = RelationBuilder::new("A")
        .attr("id", DataType::Str)
        .attr("link", DataType::Str);
    let mut b = RelationBuilder::new("B")
        .attr("id", DataType::Str)
        .attr("payload", DataType::Str);
    for k in 0..rows {
        a = a.row(vec![
            format!("a{k}").into(),
            format!("b{}", k % (rows / 2 + 1)).into(),
        ]);
        b = b.row(vec![format!("b{k}").into(), format!("p{k}").into()]);
    }
    (
        a.build().expect("valid").to_table("A"),
        b.build().expect("valid").to_table("B"),
    )
}

fn bench_hash_vs_nested(c: &mut Criterion) {
    let mut group = c.benchmark_group("join_ablation");
    let funcs = FuncRegistry::with_builtins();
    // `A.link = B.id` takes the hash path; the >=/<= phrasing is
    // semantically identical but defeats equi-extraction
    let hash_pred = parse_expr("A.link = B.id").expect("valid");
    let nested_pred = parse_expr("A.link >= B.id AND A.link <= B.id").expect("valid");
    for rows in [200usize, 1000, 5000] {
        let (a, b) = tables(rows);
        group.bench_with_input(BenchmarkId::new("hash", rows), &rows, |bch, _| {
            bch.iter(|| {
                black_box(
                    join(&a, &b, &hash_pred, JoinKind::Inner, &funcs)
                        .expect("joins")
                        .len(),
                )
            });
        });
        if rows <= 1000 {
            group.bench_with_input(BenchmarkId::new("nested_loop", rows), &rows, |bch, _| {
                bch.iter(|| {
                    black_box(
                        join(&a, &b, &nested_pred, JoinKind::Inner, &funcs)
                            .expect("joins")
                            .len(),
                    )
                });
            });
        }
    }
    group.finish();
}

fn bench_outer_kinds(c: &mut Criterion) {
    let mut group = c.benchmark_group("join_kinds");
    let funcs = FuncRegistry::with_builtins();
    let pred = parse_expr("A.link = B.id").expect("valid");
    let (a, b) = tables(2000);
    for (name, kind) in [
        ("inner", JoinKind::Inner),
        ("left_outer", JoinKind::LeftOuter),
        ("full_outer", JoinKind::FullOuter),
    ] {
        group.bench_function(name, |bch| {
            bch.iter(|| black_box(join(&a, &b, &pred, kind, &funcs).expect("joins").len()));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_hash_vs_nested, bench_outer_kinds
}
criterion_main!(benches);
