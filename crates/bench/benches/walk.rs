//! B4 — data-walk path inference cost vs schema size: enumerating walks
//! over knowledge graphs of 10–200 relations.
//!
//! Expected shape: near-linear in the number of admissible paths; the
//! path-length cap keeps large schemas interactive (the paper requires
//! walks to feel instantaneous to a user).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use clio_datagen::synthetic::random_knowledge;

fn bench_schema_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("walk_schema_size");
    for n in [10usize, 50, 100, 200] {
        let k = random_knowledge(n, n / 2, 0x5EED);
        let target = format!("R{}", n - 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &k, |b, k| {
            b.iter(|| black_box(k.paths("R0", &target, 5).len()));
        });
    }
    group.finish();
}

fn bench_path_cap(c: &mut Criterion) {
    let mut group = c.benchmark_group("walk_path_cap");
    let k = random_knowledge(60, 40, 0x5EED);
    for cap in [3usize, 5, 7] {
        group.bench_with_input(BenchmarkId::from_parameter(cap), &cap, |b, &cap| {
            b.iter(|| black_box(k.paths("R0", "R59", cap).len()));
        });
    }
    group.finish();
}

fn bench_full_walk_operator(c: &mut Criterion) {
    use clio_bench::chain_prefix_mapping;
    use clio_core::operators::walk::data_walk;
    use clio_relational::funcs::FuncRegistry;

    let mut group = c.benchmark_group("walk_operator");
    for n in [4usize, 6, 8] {
        let w = clio_bench::chain(n, 30);
        let m = chain_prefix_mapping(&w, 2);
        let funcs = FuncRegistry::with_builtins();
        let target = format!("R{}", n - 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &w, |b, w| {
            b.iter(|| {
                black_box(
                    data_walk(&m, &w.db, &w.knowledge, "R0", &target, n, &funcs)
                        .expect("valid walk")
                        .len(),
                )
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_schema_size, bench_path_cap, bench_full_walk_operator
}
criterion_main!(benches);
