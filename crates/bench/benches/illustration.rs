//! B3 — "efficiently select a minimal sufficient illustration": greedy
//! set cover vs exact branch-and-bound vs the take-everything baseline.
//!
//! Expected shape: greedy is orders of magnitude cheaper than exact and
//! a small constant over the trivial baseline; exact stays feasible only
//! because the requirement structure keeps instances small.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use clio_bench::{chain, example_population, star};
use clio_core::illustration::{select_exact, select_greedy, SufficiencyScope};

fn bench_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("illustration_select");
    for (name, w) in [("chain4", chain(4, 200)), ("star5", star(5, 200))] {
        let pop = example_population(&w);
        let arity = w.mapping.target.arity();
        let scope = SufficiencyScope::mapping();
        group.bench_with_input(
            BenchmarkId::new("greedy", format!("{name}/{}", pop.len())),
            &pop,
            |b, pop| {
                b.iter(|| black_box(select_greedy(pop, arity, scope).len()));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("exact", format!("{name}/{}", pop.len())),
            &pop,
            |b, pop| {
                b.iter(|| black_box(select_exact(pop, arity, scope, 200_000).map(|v| v.len())));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("take_all", format!("{name}/{}", pop.len())),
            &pop,
            |b, pop| {
                b.iter(|| black_box(pop.to_vec().len()));
            },
        );
    }
    group.finish();
}

fn bench_population_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("illustration_population");
    for rows in [100usize, 400, 1600] {
        let w = chain(3, rows);
        let pop = example_population(&w);
        let arity = w.mapping.target.arity();
        group.bench_with_input(BenchmarkId::new("greedy", pop.len()), &pop, |b, pop| {
            b.iter(|| black_box(select_greedy(pop, arity, SufficiencyScope::mapping()).len()));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_selection, bench_population_scaling
}
criterion_main!(benches);
