//! B5 — data chase: finding every occurrence of a value via the inverted
//! value index vs a full database scan.
//!
//! Expected shape: index probes are O(1) and flat in database size; scans
//! grow linearly. The index build itself is a one-time linear cost,
//! benchmarked separately (amortized over every chase in a session).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use clio_bench::chain;
use clio_relational::index::{scan_occurrences, ValueIndex};
use clio_relational::value::Value;

fn bench_probe(c: &mut Criterion) {
    let mut group = c.benchmark_group("chase_probe");
    for rows in [1000usize, 10_000, 100_000] {
        let w = chain(3, rows / 3);
        let index = ValueIndex::build(&w.db);
        let probe = Value::str("r0-7");
        group.bench_with_input(BenchmarkId::new("indexed", rows), &w, |b, _| {
            b.iter(|| black_box(index.occurrences(&probe).len()));
        });
        group.bench_with_input(BenchmarkId::new("scan", rows), &w, |b, w| {
            b.iter(|| black_box(scan_occurrences(&w.db, &probe).len()));
        });
    }
    group.finish();
}

fn bench_index_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("chase_index_build");
    for rows in [1000usize, 10_000] {
        let w = chain(3, rows / 3);
        group.bench_with_input(BenchmarkId::from_parameter(rows), &w, |b, w| {
            b.iter(|| black_box(ValueIndex::build(&w.db).distinct_values()));
        });
    }
    group.finish();
}

fn bench_chase_operator(c: &mut Criterion) {
    use clio_bench::chain_prefix_mapping;
    use clio_core::operators::chase::data_chase;
    use clio_relational::funcs::FuncRegistry;

    let mut group = c.benchmark_group("chase_operator");
    for rows in [1000usize, 10_000] {
        let w = chain(4, rows / 4);
        let m = chain_prefix_mapping(&w, 1);
        let index = ValueIndex::build(&w.db);
        let funcs = FuncRegistry::with_builtins();
        let probe = Value::str("r0-3");
        group.bench_with_input(BenchmarkId::from_parameter(rows), &w, |b, w| {
            b.iter(|| {
                black_box(
                    data_chase(&m, &w.db, &index, "R0", "id", &probe, &funcs)
                        .expect("valid chase")
                        .len(),
                )
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_probe, bench_index_build, bench_chase_operator
}
criterion_main!(benches);
