//! B11 — the concurrent session service: aggregate throughput of N
//! independent sessions running the same refinement workload over one
//! source database, comparing
//!
//! * `per_session_copy` — the pre-pool model: every session deep-copies
//!   the database and rebuilds the value index (`Session::new`), then
//!   runs its workload serially;
//! * `pooled` — a `SessionPool` that derives the snapshot state once and
//!   spawns sessions as `Arc` clones, running them on the session pool
//!   at width = N.
//!
//! The shared-snapshot win is per-session setup (copy + index build)
//! falling to O(1); on multi-core hosts the pool additionally overlaps
//! the per-session evaluation work. Pool construction sits outside the
//! timed loop — a session service builds its snapshot once and serves
//! many sessions from it, which is exactly the amortization under test.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use clio_bench::service_workload;
use clio_core::mapping::Mapping;
use clio_core::session::Session;
use clio_core::session_pool::SessionPool;

fn run_workload(mut s: Session, mapping: &Mapping) -> usize {
    s.adopt_mapping(mapping.clone(), "bench session")
        .expect("valid");
    s.target_preview().expect("valid").len()
}

fn bench_concurrent_sessions(c: &mut Criterion) {
    let mut group = c.benchmark_group("concurrent_sessions");
    // one large shared source, many small sessions: each session maps a
    // 2-relation 400-row slice of a database padded with 6 x 12000-row
    // archive relations, so per-session snapshot setup dominates
    let w = service_workload(6, 12_000);
    let mapping = w.mapping.clone();
    for sessions in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("per_session_copy", sessions),
            &sessions,
            |b, &n| {
                b.iter(|| {
                    let mut total = 0;
                    for _ in 0..n {
                        let s = Session::new(w.db.clone(), w.target.clone());
                        total += run_workload(s, &mapping);
                    }
                    black_box(total)
                });
            },
        );
        let pool = SessionPool::new(w.db.clone(), w.target.clone()).with_width(sessions);
        group.bench_with_input(BenchmarkId::new("pooled", sessions), &sessions, |b, &n| {
            b.iter(|| {
                let rows = pool.run(n, |_, s| run_workload(s, &mapping));
                black_box(rows.iter().sum::<usize>())
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_concurrent_sessions
}
criterion_main!(benches);
