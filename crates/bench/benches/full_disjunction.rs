//! B1 — "efficiently compute D(G)": definitional (subgraph enumeration +
//! n-ary minimum union) vs the outer-join plan, over chain and star
//! graphs of growing node count.
//!
//! Expected shape: the outer-join plan wins everywhere and its advantage
//! grows with node count (the naive algorithm evaluates one inner join
//! per induced connected subgraph — Θ(n²) subgraphs for chains, Θ(2ⁿ) for
//! stars — and pays a subsumption pass on the union).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use clio_bench::{chain, cycle, star};
use clio_core::full_disjunction::FdAlgo;

fn bench_chains(c: &mut Criterion) {
    let mut group = c.benchmark_group("fd_chain");
    for n in [2usize, 4, 6, 8] {
        let w = chain(n, 100);
        group.bench_with_input(BenchmarkId::new("naive", n), &w, |b, w| {
            b.iter(|| black_box(clio_bench::fd(w, FdAlgo::Naive)));
        });
        group.bench_with_input(BenchmarkId::new("outer_join", n), &w, |b, w| {
            b.iter(|| black_box(clio_bench::fd(w, FdAlgo::OuterJoin)));
        });
    }
    group.finish();
}

fn bench_stars(c: &mut Criterion) {
    let mut group = c.benchmark_group("fd_star");
    for n in [3usize, 5, 7] {
        let w = star(n, 100);
        group.bench_with_input(BenchmarkId::new("naive", n), &w, |b, w| {
            b.iter(|| black_box(clio_bench::fd(w, FdAlgo::Naive)));
        });
        group.bench_with_input(BenchmarkId::new("outer_join", n), &w, |b, w| {
            b.iter(|| black_box(clio_bench::fd(w, FdAlgo::OuterJoin)));
        });
    }
    group.finish();
}

fn bench_rows_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fd_rows");
    for rows in [100usize, 400, 1600] {
        let w = chain(4, rows);
        group.bench_with_input(BenchmarkId::new("naive", rows), &w, |b, w| {
            b.iter(|| black_box(clio_bench::fd(w, FdAlgo::Naive)));
        });
        group.bench_with_input(BenchmarkId::new("outer_join", rows), &w, |b, w| {
            b.iter(|| black_box(clio_bench::fd(w, FdAlgo::OuterJoin)));
        });
    }
    group.finish();
}

fn bench_cycles(c: &mut Criterion) {
    // cycles only admit the naive algorithm; this tracks its cost
    let mut group = c.benchmark_group("fd_cycle_naive");
    for n in [3usize, 4, 5] {
        let w = cycle(n, 100);
        group.bench_with_input(BenchmarkId::from_parameter(n), &w, |b, w| {
            b.iter(|| black_box(clio_bench::fd(w, FdAlgo::Naive)));
        });
    }
    group.finish();
}

fn bench_cycle_threads(c: &mut Criterion) {
    // parallel scaling of the naive algorithm: the per-subgraph F(J)
    // evaluations fan out on the exec worker pool; output is
    // byte-identical at every thread count (pinned by a property test)
    let mut group = c.benchmark_group("fd_cycle_threads");
    let w = cycle(5, 200);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &w, |b, w| {
            b.iter(|| {
                clio_relational::exec::with_threads(threads, || {
                    black_box(clio_bench::fd(w, FdAlgo::Naive))
                })
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_chains, bench_stars, bench_rows_scaling, bench_cycles, bench_cycle_threads
}
criterion_main!(benches);
