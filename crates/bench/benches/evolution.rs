//! B7 — continuous evolution (paper Sec 5.3): extending the previous
//! illustration across a graph extension vs recomputing a minimal
//! sufficient illustration from scratch.
//!
//! Expected shape: evolution costs one example-population pass plus the
//! extension matching; recompute pays the full exact/greedy selection on
//! top. Evolution also preserves familiar data, which recompute does not
//! — this bench measures the price of that guarantee.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use clio_bench::{chain, chain_prefix_mapping};
use clio_core::evolution::evolve_illustration;
use clio_core::illustration::Illustration;
use clio_relational::funcs::FuncRegistry;

fn bench_evolve_vs_recompute(c: &mut Criterion) {
    let mut group = c.benchmark_group("evolution");
    let funcs = FuncRegistry::with_builtins();
    for rows in [100usize, 400] {
        let w = chain(4, rows);
        let old_m = chain_prefix_mapping(&w, 3);
        let old_pop = old_m.examples(&w.db, &funcs).expect("valid");
        let old_ill = Illustration::minimal_sufficient(&old_pop, old_m.target.arity());

        group.bench_with_input(BenchmarkId::new("evolve", rows), &w, |b, w| {
            b.iter(|| {
                black_box(
                    evolve_illustration(&old_ill, &old_m, &w.mapping, &w.db, &funcs)
                        .expect("valid evolution")
                        .illustration
                        .len(),
                )
            });
        });
        group.bench_with_input(BenchmarkId::new("recompute", rows), &w, |b, w| {
            b.iter(|| {
                let pop = w.mapping.examples(&w.db, &funcs).expect("valid");
                black_box(Illustration::minimal_sufficient(&pop, w.mapping.target.arity()).len())
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_evolve_vs_recompute
}
criterion_main!(benches);
