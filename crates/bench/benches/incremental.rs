//! B10 — the memoizing evaluation cache (`clio-incr`): cold evaluation
//! vs a warm re-evaluation of the same mapping, and the post-edit path
//! where a single relation's content version is bumped and only the
//! affected subgraphs recompute.
//!
//! Expected shape: the warm path is a fingerprint hash plus one table
//! clone, orders of magnitude below cold; the post-edit path sits in
//! between — on cycles it reuses every `F(J)` that avoids the edited
//! relation, on trees it falls back to the outer-join plan.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use clio_bench::{chain, cycle};
use clio_core::full_disjunction::FdAlgo;
use clio_core::incremental::full_disjunction_cached;
use clio_core::session::Session;
use clio_incr::{EvalCache, EvictionPolicy};
use clio_relational::funcs::FuncRegistry;

fn bench_mapping_eval_cold_vs_warm(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental_mapping_eval");
    let funcs = FuncRegistry::with_builtins();
    for rows in [100usize, 1000] {
        let w = chain(4, rows);
        let cache = EvalCache::new();
        group.bench_with_input(BenchmarkId::new("cold", rows), &w, |b, w| {
            b.iter(|| {
                // epoch bump empties the cache, so every iteration pays
                // the full evaluation
                cache.bump_epoch();
                black_box(
                    w.mapping
                        .evaluate_cached(&w.db, &funcs, Some(&cache))
                        .expect("valid")
                        .len(),
                )
            });
        });
        let cache = EvalCache::new();
        w.mapping
            .evaluate_cached(&w.db, &funcs, Some(&cache))
            .expect("valid");
        group.bench_with_input(BenchmarkId::new("warm", rows), &w, |b, w| {
            b.iter(|| {
                black_box(
                    w.mapping
                        .evaluate_cached(&w.db, &funcs, Some(&cache))
                        .expect("valid")
                        .len(),
                )
            });
        });
        let cache = EvalCache::new();
        w.mapping
            .evaluate_cached(&w.db, &funcs, Some(&cache))
            .expect("valid");
        group.bench_with_input(BenchmarkId::new("post_edit", rows), &w, |b, w| {
            b.iter(|| {
                // a single-relation content edit invalidates only the
                // entries that depend on R0
                cache.bump_version("R0");
                black_box(
                    w.mapping
                        .evaluate_cached(&w.db, &funcs, Some(&cache))
                        .expect("valid")
                        .len(),
                )
            });
        });
    }
    group.finish();
}

fn bench_cycle_partial_reuse(c: &mut Criterion) {
    // on cyclic graphs D(G) takes the naive per-subgraph path, so a
    // version bump on one relation recomputes only the F(J) tables whose
    // subgraph touches it
    let mut group = c.benchmark_group("incremental_cycle_fd");
    let funcs = FuncRegistry::with_builtins();
    let w = cycle(4, 100);
    let cache = EvalCache::new();
    group.bench_function("cold", |b| {
        b.iter(|| {
            cache.bump_epoch();
            black_box(
                full_disjunction_cached(&w.db, &w.graph, FdAlgo::Naive, &funcs, Some(&cache))
                    .expect("valid")
                    .len(),
            )
        });
    });
    let cache = EvalCache::new();
    full_disjunction_cached(&w.db, &w.graph, FdAlgo::Naive, &funcs, Some(&cache)).expect("valid");
    group.bench_function("post_edit", |b| {
        b.iter(|| {
            cache.bump_version("R0");
            black_box(
                full_disjunction_cached(&w.db, &w.graph, FdAlgo::Naive, &funcs, Some(&cache))
                    .expect("valid")
                    .len(),
            )
        });
    });
    let cache = EvalCache::new();
    full_disjunction_cached(&w.db, &w.graph, FdAlgo::Naive, &funcs, Some(&cache)).expect("valid");
    group.bench_function("warm", |b| {
        b.iter(|| {
            black_box(
                full_disjunction_cached(&w.db, &w.graph, FdAlgo::Naive, &funcs, Some(&cache))
                    .expect("valid")
                    .len(),
            )
        });
    });
    group.finish();
}

fn bench_eviction_policy_under_pressure(c: &mut Criterion) {
    // post-edit replay on the cyclic workload at half the working-set
    // byte budget: the eviction policy decides which F(J) tables survive
    // each round, so the replay pays recompute for exactly the entries
    // its policy chose to sacrifice
    let mut group = c.benchmark_group("incremental_eviction_policy");
    let funcs = FuncRegistry::with_builtins();
    let w = cycle(4, 100);
    let probe = EvalCache::new();
    full_disjunction_cached(&w.db, &w.graph, FdAlgo::Naive, &funcs, Some(&probe)).expect("valid");
    let budget = (probe.stats().bytes / 2).max(1);
    for policy in [EvictionPolicy::Lru, EvictionPolicy::CostAware] {
        let cache = EvalCache::with_capacity(budget);
        cache.set_policy(policy);
        full_disjunction_cached(&w.db, &w.graph, FdAlgo::Naive, &funcs, Some(&cache))
            .expect("valid");
        group.bench_function(policy.name(), |b| {
            b.iter(|| {
                cache.bump_version("R0");
                black_box(
                    full_disjunction_cached(&w.db, &w.graph, FdAlgo::Naive, &funcs, Some(&cache))
                        .expect("valid")
                        .len(),
                )
            });
        });
    }
    group.finish();
}

fn bench_session_warm_preview(c: &mut Criterion) {
    // the acceptance workload: a session previewing the B1 chain mapping;
    // warm = second identical target_preview after a single-relation edit
    let mut group = c.benchmark_group("incremental_session_preview");
    let w = chain(4, 100);
    let mut session = Session::new(w.db.clone(), w.target.clone());
    session
        .adopt_mapping(w.mapping.clone(), "bench chain")
        .expect("valid");
    group.bench_function("cold", |b| {
        b.iter(|| {
            session.cache().bump_epoch();
            black_box(session.target_preview().expect("valid").len())
        });
    });
    session.target_preview().expect("valid");
    group.bench_function("post_edit", |b| {
        b.iter(|| {
            session.cache().bump_version("R0");
            black_box(session.target_preview().expect("valid").len())
        });
    });
    session.target_preview().expect("valid");
    group.bench_function("warm", |b| {
        b.iter(|| black_box(session.target_preview().expect("valid").len()));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_mapping_eval_cold_vs_warm, bench_cycle_partial_reuse,
        bench_eviction_policy_under_pressure, bench_session_warm_preview
}
criterion_main!(benches);
