//! B2 — minimum-union inner loop: naive O(n²) subsumption removal vs the
//! coverage/null-mask-partitioned algorithm.
//!
//! Expected shape: the partitioned algorithm wins increasingly with row
//! count; at high null rates (many distinct masks) its advantage narrows
//! but never inverts at realistic sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use clio_bench::nullable_table;
use clio_relational::ops::SubsumptionAlgo;
use clio_relational::ops::{remove_subsumed, remove_subsumed_naive, remove_subsumed_partitioned};

fn bench_rows(c: &mut Criterion) {
    let mut group = c.benchmark_group("subsumption_rows");
    for rows in [500usize, 2000, 8000] {
        let t = nullable_table(rows, 6, 0.4, 0xBEEF);
        group.bench_with_input(BenchmarkId::new("naive", rows), &t, |b, t| {
            b.iter(|| {
                let mut t = t.clone();
                remove_subsumed_naive(&mut t);
                black_box(t.len())
            });
        });
        group.bench_with_input(BenchmarkId::new("partitioned", rows), &t, |b, t| {
            b.iter(|| {
                let mut t = t.clone();
                remove_subsumed_partitioned(&mut t);
                black_box(t.len())
            });
        });
    }
    group.finish();
}

fn bench_null_rate(c: &mut Criterion) {
    let mut group = c.benchmark_group("subsumption_null_rate");
    for pct in [10u32, 40, 70] {
        let t = nullable_table(2000, 6, f64::from(pct) / 100.0, 0xBEEF);
        group.bench_with_input(BenchmarkId::new("naive", pct), &t, |b, t| {
            b.iter(|| {
                let mut t = t.clone();
                remove_subsumed_naive(&mut t);
                black_box(t.len())
            });
        });
        group.bench_with_input(BenchmarkId::new("partitioned", pct), &t, |b, t| {
            b.iter(|| {
                let mut t = t.clone();
                remove_subsumed_partitioned(&mut t);
                black_box(t.len())
            });
        });
    }
    group.finish();
}

fn bench_threads(c: &mut Criterion) {
    // parallel scaling of the partitioned algorithm: the per-row
    // mask-probe step fans out on the exec worker pool above the
    // PARTITIONED_PARALLEL_MIN_ROWS threshold
    let mut group = c.benchmark_group("subsumption_threads");
    let t = nullable_table(8000, 6, 0.4, 0xBEEF);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &t, |b, t| {
            b.iter(|| {
                clio_relational::exec::with_threads(threads, || {
                    let mut t = t.clone();
                    remove_subsumed_partitioned(&mut t);
                    black_box(t.len())
                })
            });
        });
    }
    group.finish();
}

fn bench_adaptive(c: &mut Criterion) {
    // the adaptive dispatcher vs each fixed algorithm at its weak spot:
    // small tables (naive's turf) and large repetitive-mask tables
    // (partitioned's turf)
    let mut group = c.benchmark_group("subsumption_adaptive");
    for (label, rows, arity, null_rate) in
        [("small", 48usize, 4usize, 0.4f64), ("large", 4000, 6, 0.4)]
    {
        let t = nullable_table(rows, arity, null_rate, 0xBEEF);
        for (algo_label, algo) in [
            ("naive", SubsumptionAlgo::Naive),
            ("partitioned", SubsumptionAlgo::Partitioned),
            ("adaptive", SubsumptionAlgo::Adaptive),
        ] {
            group.bench_with_input(BenchmarkId::new(algo_label, label), &t, |b, t| {
                b.iter(|| {
                    let mut t = t.clone();
                    remove_subsumed(&mut t, algo);
                    black_box(t.len())
                });
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_rows, bench_null_rate, bench_threads, bench_adaptive
}
criterion_main!(benches);
