//! B8 — expression pipeline microbenchmarks: parsing, binding, and the
//! bound-vs-unbound evaluation ablation.
//!
//! Binding resolves column names to row indexes once; the mapping
//! evaluator binds every correspondence and filter up front. This bench
//! quantifies what that buys per row.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use clio_relational::funcs::FuncRegistry;
use clio_relational::parser::parse_expr;
use clio_relational::relation::RelationBuilder;
use clio_relational::schema::Scheme;
use clio_relational::table::Table;
use clio_relational::value::DataType;

const EXPRS: &[(&str, &str)] = &[
    ("join_pred", "C.mid = P.ID"),
    ("filter", "C.age < 7 AND C.name IS NOT NULL"),
    ("correspondence", "concat(Ph.type, ',', Ph.number)"),
    (
        "complex",
        "CASE WHEN C.age BETWEEN 0 AND 4 THEN 'small' \
              WHEN C.ID IN ('001', '002') THEN 'known' \
              ELSE upper(C.name) || '!' END",
    ),
];

fn bench_parse(c: &mut Criterion) {
    let mut group = c.benchmark_group("expr_parse");
    for (name, text) in EXPRS {
        group.bench_with_input(BenchmarkId::from_parameter(name), text, |b, text| {
            b.iter(|| black_box(parse_expr(text).expect("valid")));
        });
    }
    group.finish();
}

fn table() -> Table {
    let mut b = RelationBuilder::new("W")
        .attr("w0", DataType::Str)
        .attr("w1", DataType::Str)
        .attr("w2", DataType::Int)
        .attr("w3", DataType::Str)
        .attr("w4", DataType::Str)
        .attr("w5", DataType::Str);
    for k in 0..1000i64 {
        b = b.row(vec![
            format!("id{k}").into(),
            format!("id{}", k % 97).into(),
            (k % 13).into(),
            format!("name{k}").into(),
            "home".into(),
            format!("555-{k:04}").into(),
        ]);
    }
    b.build().expect("valid").to_table("W")
}

/// One evaluation-compatible expression over the synthetic wide table.
fn eval_expr() -> clio_relational::expr::Expr {
    parse_expr(
        "CASE WHEN W.w2 BETWEEN 0 AND 4 THEN 'small' \
              WHEN W.w0 IN ('id1', 'id2') THEN 'known' \
              ELSE upper(W.w3) || '!' END",
    )
    .expect("valid")
}

fn bench_bound_vs_unbound(c: &mut Criterion) {
    let mut group = c.benchmark_group("expr_eval");
    let t = table();
    let funcs = FuncRegistry::with_builtins();
    let e = eval_expr();
    group.bench_function("bind_once_eval_all", |b| {
        b.iter(|| {
            let bound = e.bind(t.scheme()).expect("binds");
            let mut n = 0usize;
            for row in t.rows() {
                if !bound.eval(row, &funcs).expect("evals").is_null() {
                    n += 1;
                }
            }
            black_box(n)
        });
    });
    group.bench_function("rebind_per_row", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for row in t.rows() {
                if !e.eval(t.scheme(), row, &funcs).expect("evals").is_null() {
                    n += 1;
                }
            }
            black_box(n)
        });
    });
    group.finish();
}

fn bench_bind(c: &mut Criterion) {
    let t = table();
    let e = eval_expr();
    c.bench_function("expr_bind", |b| {
        let scheme: &Scheme = t.scheme();
        b.iter(|| black_box(e.bind(scheme).expect("binds")));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_parse, bench_bound_vs_unbound, bench_bind
}
criterion_main!(benches);
