//! Run the parameter sweeps behind EXPERIMENTS.md and print one markdown
//! table per experiment (B1–B17). Wall-clock medians over a few
//! repetitions — the Criterion benches give rigorous statistics; this
//! binary gives the compact tables the docs quote.
//!
//! ```sh
//! cargo run --release -p clio-bench --bin experiments
//! ```

use std::time::{Duration, Instant};

use clio_obs::metrics::MetricsSnapshot;

use clio_bench::{
    chain, chain_prefix_mapping, cycle, example_population, nullable_table, service_workload, star,
};
use clio_core::evolution::evolve_illustration;
use clio_core::full_disjunction::FdAlgo;
use clio_core::illustration::{select_exact, select_greedy, Illustration, SufficiencyScope};
use clio_core::operators::chase::data_chase;
use clio_core::operators::walk::data_walk;
use clio_datagen::synthetic::random_knowledge;
use clio_incr::EvalCache;
use clio_relational::funcs::FuncRegistry;
use clio_relational::index::{scan_occurrences, ValueIndex};
use clio_relational::ops::{join, remove_subsumed_naive, remove_subsumed_partitioned, JoinKind};
use clio_relational::parser::parse_expr;
use clio_relational::relation::RelationBuilder;
use clio_relational::table::Table;
use clio_relational::value::{DataType, Value};

const REPS: usize = 5;

fn median(mut samples: Vec<Duration>) -> Duration {
    samples.sort();
    samples[samples.len() / 2]
}

fn time(mut f: impl FnMut()) -> Duration {
    let samples: Vec<Duration> = (0..REPS)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed()
        })
        .collect();
    median(samples)
}

fn fmt(d: Duration) -> String {
    if d.as_secs_f64() >= 1.0 {
        format!("{:.2}s", d.as_secs_f64())
    } else if d.as_micros() >= 1000 {
        format!("{:.2}ms", d.as_secs_f64() * 1e3)
    } else {
        format!("{:.1}us", d.as_secs_f64() * 1e6)
    }
}

fn ratio(a: Duration, b: Duration) -> String {
    format!("{:.1}x", a.as_secs_f64() / b.as_secs_f64())
}

/// Work counters for one un-timed run of `f` (timed reps stay
/// uninstrumented so counting overhead never pollutes the medians).
fn counted(f: impl FnOnce()) -> MetricsSnapshot {
    clio_obs::set_metrics_enabled(true);
    let base = clio_obs::snapshot();
    f();
    let delta = clio_obs::snapshot().since(&base);
    clio_obs::set_metrics_enabled(false);
    delta
}

fn b1_full_disjunction() {
    println!("\n## B1 — full disjunction: naive vs outer-join plan\n");
    println!(
        "| topology | nodes | rows/rel | naive | outer-join | speedup | |D(G)| \
         | subgraphs | join probes |"
    );
    println!("|---|---|---|---|---|---|---|---|---|");
    for (name, ns, rows) in [
        ("chain", vec![2usize, 4, 6, 8], 100),
        ("star", vec![3, 5, 7], 100),
    ] {
        for n in ns {
            let w = if name == "chain" {
                chain(n, rows)
            } else {
                star(n, rows)
            };
            let mut count = 0;
            let naive = time(|| count = clio_bench::fd(&w, FdAlgo::Naive));
            let outer = time(|| count = clio_bench::fd(&w, FdAlgo::OuterJoin));
            let work = counted(|| {
                let _ = clio_bench::fd(&w, FdAlgo::Naive);
                let _ = clio_bench::fd(&w, FdAlgo::OuterJoin);
            });
            println!(
                "| {name} | {n} | {rows} | {} | {} | {} | {count} | {} | {} |",
                fmt(naive),
                fmt(outer),
                ratio(naive, outer),
                work.get(clio_obs::Counter::SubgraphsEnumerated),
                work.get(clio_obs::Counter::JoinProbes)
            );
        }
    }
    // rows scaling at fixed shape
    for rows in [100usize, 400, 1600] {
        let w = chain(4, rows);
        let mut count = 0;
        let naive = time(|| count = clio_bench::fd(&w, FdAlgo::Naive));
        let outer = time(|| count = clio_bench::fd(&w, FdAlgo::OuterJoin));
        let work = counted(|| {
            let _ = clio_bench::fd(&w, FdAlgo::Naive);
            let _ = clio_bench::fd(&w, FdAlgo::OuterJoin);
        });
        println!(
            "| chain | 4 | {rows} | {} | {} | {} | {count} | {} | {} |",
            fmt(naive),
            fmt(outer),
            ratio(naive, outer),
            work.get(clio_obs::Counter::SubgraphsEnumerated),
            work.get(clio_obs::Counter::JoinProbes)
        );
    }
    // cyclic: naive only
    println!("\ncyclic graphs (naive only):\n");
    println!("| nodes | rows/rel | naive | |D(G)| |");
    println!("|---|---|---|---|");
    for n in [3usize, 4, 5] {
        let w = cycle(n, 100);
        let mut count = 0;
        let naive = time(|| count = clio_bench::fd(&w, FdAlgo::Naive));
        println!("| {n} | 100 | {} | {count} |", fmt(naive));
    }
    // parallel naive: the per-subgraph F(J) evaluations fan out on the
    // exec worker pool; output is byte-identical at every thread count
    let hw = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!("\nparallel naive on cycles ({hw} hardware thread(s) available):\n");
    println!("| nodes | rows/rel | threads=1 | threads=2 | threads=4 | speedup 1->4 |");
    println!("|---|---|---|---|---|---|");
    for (n, rows) in [(4usize, 200usize), (5, 200)] {
        let w = cycle(n, rows);
        let timed = |threads: usize| {
            time(|| {
                clio_relational::exec::with_threads(threads, || {
                    std::hint::black_box(clio_bench::fd(&w, FdAlgo::Naive));
                });
            })
        };
        let (t1, t2, t4) = (timed(1), timed(2), timed(4));
        println!(
            "| {n} | {rows} | {} | {} | {} | {} |",
            fmt(t1),
            fmt(t2),
            fmt(t4),
            ratio(t1, t4)
        );
    }
}

fn b2_subsumption() {
    println!("\n## B2 — subsumption removal: naive O(n^2) vs partitioned\n");
    println!(
        "| rows | null rate | naive | partitioned | speedup | survivors \
         | naive cmps | part cmps |"
    );
    println!("|---|---|---|---|---|---|---|---|");
    for (rows, null_rate) in [
        (500usize, 0.4),
        (2000, 0.4),
        (8000, 0.4),
        (2000, 0.1),
        (2000, 0.7),
    ] {
        let t0 = nullable_table(rows, 6, null_rate, 0xBEEF);
        let mut survivors = 0;
        let naive = time(|| {
            let mut t = t0.clone();
            remove_subsumed_naive(&mut t);
            survivors = t.len();
        });
        let part = time(|| {
            let mut t = t0.clone();
            remove_subsumed_partitioned(&mut t);
            survivors = t.len();
        });
        let naive_work = counted(|| {
            let mut t = t0.clone();
            remove_subsumed_naive(&mut t);
        });
        let part_work = counted(|| {
            let mut t = t0.clone();
            remove_subsumed_partitioned(&mut t);
        });
        println!(
            "| {rows} | {null_rate} | {} | {} | {} | {survivors} | {} | {} |",
            fmt(naive),
            fmt(part),
            ratio(naive, part),
            naive_work.get(clio_obs::Counter::SubsumptionComparisons),
            part_work.get(clio_obs::Counter::SubsumptionComparisons)
        );
    }
}

fn b3_illustration() {
    println!("\n## B3 — minimal sufficient illustration selection\n");
    println!(
        "| workload | examples | greedy | exact (B&B) | greedy size | exact size \
         | req checks (greedy) |"
    );
    println!("|---|---|---|---|---|---|---|");
    // the paper-scale instance, where exact search completes
    {
        let db = clio_datagen::paper::paper_database();
        let m = clio_datagen::paper::example_3_15_mapping();
        let funcs = FuncRegistry::with_builtins();
        let pop = m.examples(&db, &funcs).expect("valid");
        let arity = m.target.arity();
        let scope = SufficiencyScope::mapping();
        let mut gsize = 0;
        let greedy = time(|| gsize = select_greedy(&pop, arity, scope).len());
        let mut esize: Option<usize> = None;
        let exact = time(|| esize = select_exact(&pop, arity, scope, 200_000).map(|v| v.len()));
        let work = counted(|| {
            let _ = select_greedy(&pop, arity, scope);
        });
        println!(
            "| paper (Ex 3.15) | {} | {} | {} | {gsize} | {} | {} |",
            pop.len(),
            fmt(greedy),
            fmt(exact),
            esize.map_or("timeout".to_owned(), |n| n.to_string()),
            work.get(clio_obs::Counter::RequirementsChecked)
        );
    }
    for (name, w) in [
        ("chain4 x200", chain(4, 200)),
        ("star5 x200", star(5, 200)),
        ("chain3 x1600", chain(3, 1600)),
    ] {
        let pop = example_population(&w);
        let arity = w.mapping.target.arity();
        let scope = SufficiencyScope::mapping();
        let mut gsize = 0;
        let greedy = time(|| gsize = select_greedy(&pop, arity, scope).len());
        let mut esize: Option<usize> = None;
        let exact = time(|| esize = select_exact(&pop, arity, scope, 200_000).map(|v| v.len()));
        let work = counted(|| {
            let _ = select_greedy(&pop, arity, scope);
        });
        println!(
            "| {name} | {} | {} | {} | {gsize} | {} | {} |",
            pop.len(),
            fmt(greedy),
            fmt(exact),
            esize.map_or("timeout".to_owned(), |n| n.to_string()),
            work.get(clio_obs::Counter::RequirementsChecked)
        );
    }
}

fn b4_walk() {
    println!("\n## B4 — data-walk path inference vs schema size\n");
    println!("| relations | extra specs | paths (cap 5) | time |");
    println!("|---|---|---|---|");
    for n in [10usize, 50, 100, 200] {
        let k = random_knowledge(n, n / 2, 0x5EED);
        let target = format!("R{}", n - 1);
        let mut count = 0;
        let t = time(|| count = k.paths("R0", &target, 5).len());
        println!("| {n} | {} | {count} | {} |", n / 2, fmt(t));
    }
    println!("\nfull walk operator on chains (prefix mapping of 2 nodes):\n");
    println!("| chain length | alternatives | time | generated | pruned |");
    println!("|---|---|---|---|---|");
    let funcs = FuncRegistry::with_builtins();
    for n in [4usize, 6, 8] {
        let w = chain(n, 30);
        let m = chain_prefix_mapping(&w, 2);
        let target = format!("R{}", n - 1);
        let mut count = 0;
        let t = time(|| {
            count = data_walk(&m, &w.db, &w.knowledge, "R0", &target, n, &funcs)
                .expect("valid")
                .len();
        });
        let work = counted(|| {
            data_walk(&m, &w.db, &w.knowledge, "R0", &target, n, &funcs).expect("valid");
        });
        println!(
            "| {n} | {count} | {} | {} | {} |",
            fmt(t),
            work.get(clio_obs::Counter::WalkAlternativesGenerated),
            work.get(clio_obs::Counter::WalkAlternativesPruned)
        );
    }
}

fn b5_chase() {
    println!("\n## B5 — data chase: inverted index vs full scan\n");
    println!("| total rows | index probe | full scan | scan/probe | index build |");
    println!("|---|---|---|---|---|");
    for rows in [1000usize, 10_000, 100_000] {
        let w = chain(3, rows / 3);
        let index = ValueIndex::build(&w.db);
        let probe = Value::str("r0-7");
        let p = time(|| {
            std::hint::black_box(index.occurrences(&probe).len());
        });
        let s = time(|| {
            std::hint::black_box(scan_occurrences(&w.db, &probe).len());
        });
        let b = time(|| {
            std::hint::black_box(ValueIndex::build(&w.db).distinct_values());
        });
        println!(
            "| {rows} | {} | {} | {} | {} |",
            fmt(p),
            fmt(s),
            ratio(s, p),
            fmt(b)
        );
    }
    println!("\nchase operator end to end:\n");
    println!("| total rows | scenarios | pruned sites | time |");
    println!("|---|---|---|---|");
    let funcs = FuncRegistry::with_builtins();
    for rows in [1000usize, 10_000] {
        let w = chain(4, rows / 4);
        let m = chain_prefix_mapping(&w, 1);
        let index = ValueIndex::build(&w.db);
        let probe = Value::str("r0-3");
        let mut count = 0;
        let t = time(|| {
            count = data_chase(&m, &w.db, &index, "R0", "id", &probe, &funcs)
                .expect("valid")
                .len();
        });
        let work = counted(|| {
            data_chase(&m, &w.db, &index, "R0", "id", &probe, &funcs).expect("valid");
        });
        println!(
            "| {rows} | {count} | {} | {} |",
            work.get(clio_obs::Counter::ChaseAlternativesPruned),
            fmt(t)
        );
    }
}

fn b6_mapping_eval() {
    println!("\n## B6 — end-to-end mapping evaluation (WYSIWYG refresh)\n");
    println!("| workload | rows/rel | target tuples | time | tuples scanned | join probes |");
    println!("|---|---|---|---|---|---|");
    let funcs = FuncRegistry::with_builtins();
    for (name, w) in [
        ("chain4", chain(4, 100)),
        ("chain4", chain(4, 1000)),
        ("chain4", chain(4, 10_000)),
        ("chain6", chain(6, 1000)),
        ("star5", star(5, 1000)),
    ] {
        let rows = w.db.relation("R0").unwrap().len();
        let mut count = 0;
        let t = time(|| count = w.mapping.evaluate(&w.db, &funcs).expect("valid").len());
        let work = counted(|| {
            w.mapping.evaluate(&w.db, &funcs).expect("valid");
        });
        println!(
            "| {name} | {rows} | {count} | {} | {} | {} |",
            fmt(t),
            work.get(clio_obs::Counter::TuplesScanned),
            work.get(clio_obs::Counter::JoinProbes)
        );
    }
}

fn b7_evolution() {
    println!("\n## B7 — illustration evolution vs recompute\n");
    println!(
        "| rows/rel | evolve | recompute | evolve size | extended | repaired \
         | req checks (evolve) | req checks (recompute) |"
    );
    println!("|---|---|---|---|---|---|---|---|");
    let funcs = FuncRegistry::with_builtins();
    for rows in [100usize, 400, 1600] {
        let w = chain(4, rows);
        let old_m = chain_prefix_mapping(&w, 3);
        let old_pop = old_m.examples(&w.db, &funcs).expect("valid");
        let old_ill = Illustration::minimal_sufficient(&old_pop, old_m.target.arity());
        let mut evo_size = 0;
        let mut extended = 0;
        let mut repaired = 0;
        let evolve = time(|| {
            let evo =
                evolve_illustration(&old_ill, &old_m, &w.mapping, &w.db, &funcs).expect("valid");
            evo_size = evo.illustration.len();
            extended = evo.extended_count;
            repaired = evo.repair_count;
        });
        let recompute = time(|| {
            let pop = w.mapping.examples(&w.db, &funcs).expect("valid");
            std::hint::black_box(
                Illustration::minimal_sufficient(&pop, w.mapping.target.arity()).len(),
            );
        });
        let evolve_work = counted(|| {
            evolve_illustration(&old_ill, &old_m, &w.mapping, &w.db, &funcs).expect("valid");
        });
        let recompute_work = counted(|| {
            let pop = w.mapping.examples(&w.db, &funcs).expect("valid");
            std::hint::black_box(
                Illustration::minimal_sufficient(&pop, w.mapping.target.arity()).len(),
            );
        });
        println!(
            "| {rows} | {} | {} | {evo_size} | {extended} | {repaired} | {} | {} |",
            fmt(evolve),
            fmt(recompute),
            evolve_work.get(clio_obs::Counter::RequirementsChecked),
            recompute_work.get(clio_obs::Counter::RequirementsChecked)
        );
    }
}

/// The B8 wide table: six columns, string/int mixed, `rows` rows.
fn wide_table(rows: i64) -> Table {
    let mut b = RelationBuilder::new("W")
        .attr("w0", DataType::Str)
        .attr("w1", DataType::Str)
        .attr("w2", DataType::Int)
        .attr("w3", DataType::Str);
    for k in 0..rows {
        b = b.row(vec![
            format!("id{k}").into(),
            format!("id{}", k % 97).into(),
            (k % 13).into(),
            format!("name{k}").into(),
        ]);
    }
    b.build().expect("valid").to_table("W")
}

fn b8_expressions() {
    println!("\n## B8 — expression pipeline: bind-once vs rebind-per-row\n");
    println!("| rows | bind-once eval | rebind per row | ratio | select scan.tuples |");
    println!("|---|---|---|---|---|");
    let funcs = FuncRegistry::with_builtins();
    let e = parse_expr(
        "CASE WHEN W.w2 BETWEEN 0 AND 4 THEN 'small' \
              WHEN W.w0 IN ('id1', 'id2') THEN 'known' \
              ELSE upper(W.w3) || '!' END",
    )
    .expect("valid");
    let pred = parse_expr("W.w2 < 5 AND W.w3 IS NOT NULL").expect("valid");
    for rows in [1000i64, 4000] {
        let t = wide_table(rows);
        let bound_once = time(|| {
            let bound = e.bind(t.scheme()).expect("binds");
            let mut n = 0usize;
            for row in t.rows() {
                if !bound.eval(row, &funcs).expect("evals").is_null() {
                    n += 1;
                }
            }
            std::hint::black_box(n);
        });
        let rebind = time(|| {
            let mut n = 0usize;
            for row in t.rows() {
                if !e.eval(t.scheme(), row, &funcs).expect("evals").is_null() {
                    n += 1;
                }
            }
            std::hint::black_box(n);
        });
        let work = counted(|| {
            std::hint::black_box(
                clio_relational::ops::select(&t, &pred, &funcs)
                    .expect("valid")
                    .len(),
            );
        });
        println!(
            "| {rows} | {} | {} | {} | {} |",
            fmt(bound_once),
            fmt(rebind),
            ratio(rebind, bound_once),
            work.get(clio_obs::Counter::TuplesScanned)
        );
    }
}

/// The B9 join inputs: `A(id, link)` and `B(id, payload)` with a ~2:1
/// fan-in of `A.link` onto `B.id`.
fn join_tables(rows: usize) -> (Table, Table) {
    let mut a = RelationBuilder::new("A")
        .attr("id", DataType::Str)
        .attr("link", DataType::Str);
    let mut b = RelationBuilder::new("B")
        .attr("id", DataType::Str)
        .attr("payload", DataType::Str);
    for k in 0..rows {
        a = a.row(vec![
            format!("a{k}").into(),
            format!("b{}", k % (rows / 2 + 1)).into(),
        ]);
        b = b.row(vec![format!("b{k}").into(), format!("p{k}").into()]);
    }
    (
        a.build().expect("valid").to_table("A"),
        b.build().expect("valid").to_table("B"),
    )
}

fn b9_join_ablation() {
    println!("\n## B9 — join ablation: hash-equijoin fast path vs nested loop\n");
    println!(
        "| rows/side | hash | nested loop | ratio | hash join.probes \
         | nested join.probes | scan.tuples |"
    );
    println!("|---|---|---|---|---|---|---|");
    let funcs = FuncRegistry::with_builtins();
    // the same predicate, phrased to take each path: `=` hashes,
    // `>= AND <=` defeats equi-extraction and falls back to nested loop
    let hash_pred = parse_expr("A.link = B.id").expect("valid");
    let nested_pred = parse_expr("A.link >= B.id AND A.link <= B.id").expect("valid");
    for rows in [200usize, 1000] {
        let (a, b) = join_tables(rows);
        let hash = time(|| {
            std::hint::black_box(
                join(&a, &b, &hash_pred, JoinKind::Inner, &funcs)
                    .expect("joins")
                    .len(),
            );
        });
        let nested = time(|| {
            std::hint::black_box(
                join(&a, &b, &nested_pred, JoinKind::Inner, &funcs)
                    .expect("joins")
                    .len(),
            );
        });
        let hash_work = counted(|| {
            join(&a, &b, &hash_pred, JoinKind::Inner, &funcs).expect("joins");
        });
        let nested_work = counted(|| {
            join(&a, &b, &nested_pred, JoinKind::Inner, &funcs).expect("joins");
        });
        // nested-loop pair tests count as probes too, so the fallback
        // shows up as quadratic (rows^2) vs linear probes — the
        // tell-tale the golden counter gate in scripts/verify.sh
        // watches for
        println!(
            "| {rows} | {} | {} | {} | {} | {} | {} |",
            fmt(hash),
            fmt(nested),
            ratio(nested, hash),
            hash_work.get(clio_obs::Counter::JoinProbes),
            nested_work.get(clio_obs::Counter::JoinProbes),
            hash_work.get(clio_obs::Counter::TuplesScanned)
        );
    }
}

fn b10_warm_path() {
    println!("\n## B10 — operator-sequence warm path: the memoizing evaluation cache\n");
    println!(
        "| workload | cold | post-edit | warm | cold/warm | cache.hits \
         | cache.misses |"
    );
    println!("|---|---|---|---|---|---|---|");
    let funcs = FuncRegistry::with_builtins();
    for (name, w) in [
        ("chain4 x100", chain(4, 100)),
        ("chain4 x1000", chain(4, 1000)),
        ("star5 x1000", star(5, 1000)),
        ("cycle4 x100", cycle(4, 100)),
        ("cycle5 x100", cycle(5, 100)),
    ] {
        let cache = EvalCache::new();
        let eval = || {
            w.mapping
                .evaluate_cached(&w.db, &funcs, Some(&cache))
                .expect("valid")
                .len()
        };
        let cold = time(|| {
            cache.bump_epoch();
            std::hint::black_box(eval());
        });
        eval();
        let post_edit = time(|| {
            // a content edit on one base relation: only entries that
            // depend on R0 are invalidated, the rest are reused
            cache.bump_version("R0");
            std::hint::black_box(eval());
        });
        eval();
        let warm = time(|| {
            std::hint::black_box(eval());
        });
        // one counted edit → preview → preview round for the hit/miss mix
        let work = counted(|| {
            cache.bump_version("R0");
            eval();
            eval();
        });
        println!(
            "| {name} | {} | {} | {} | {} | {} | {} |",
            fmt(cold),
            fmt(post_edit),
            fmt(warm),
            ratio(cold, warm),
            work.get(clio_obs::Counter::CacheHits),
            work.get(clio_obs::Counter::CacheMisses)
        );
    }
}

fn b10_eviction_pressure() {
    println!("\n### B10b — eviction pressure: post-edit replay under shrinking byte budgets\n");
    println!("| workload | budget | post-edit replay | hits | misses | evictions |");
    println!("|---|---|---|---|---|---|");
    // cyclic workloads memoize one table per subgraph F(J); an edit to
    // R0 invalidates only the dependent entries, so the replay's speed
    // depends on the *other* entries still being resident — exactly what
    // a shrinking byte budget destroys. Tree-shaped mappings cache a
    // single result table and have nothing to evict.
    let funcs = FuncRegistry::with_builtins();
    for (name, w) in [
        ("cycle4 x100", cycle(4, 100)),
        ("cycle5 x100", cycle(5, 100)),
    ] {
        let eval = |cache: &EvalCache| {
            w.mapping
                .evaluate_cached(&w.db, &funcs, Some(cache))
                .expect("valid")
                .len()
        };
        // working set: resident bytes after one cold evaluation with an
        // effectively unbounded budget
        let probe = EvalCache::new();
        eval(&probe);
        let working = probe.stats().bytes.max(1);
        for pct in [100usize, 50, 25, 10] {
            let cache = EvalCache::with_capacity((working * pct / 100).max(1));
            eval(&cache); // cold fill under the budget
            let post_edit = time(|| {
                cache.bump_version("R0");
                std::hint::black_box(eval(&cache));
            });
            // one counted edit-replay round for the hit/miss/eviction mix
            let before = cache.stats();
            cache.bump_version("R0");
            eval(&cache);
            let s = cache.stats();
            println!(
                "| {name} | {pct}% | {} | {} | {} | {} |",
                fmt(post_edit),
                s.hits - before.hits,
                s.misses - before.misses,
                s.evictions - before.evictions,
            );
        }
    }
}

fn b14_policy_budget_sweep() {
    println!("\n## B14 — eviction policy under budget pressure: LRU vs cost-aware\n");
    println!(
        "| workload | budget | policy | post-edit replay | hits | misses | hit rate \
         | evictions |"
    );
    println!("|---|---|---|---|---|---|---|---|");
    // The B10b sweep, run once per eviction policy. Rounds are steady-
    // state: after the cold fill, un-counted edit-replay rounds let each
    // policy settle on a resident set (cost-aware learns which F(J)
    // tables recur through ghost-frequency history, which takes a few
    // rejection rounds to compound), then several counted rounds report
    // the aggregate hit/miss/eviction mix — aggregating smooths the
    // round-to-round churn a tight budget induces — plus a timed replay.
    let funcs = FuncRegistry::with_builtins();
    for (name, w) in [
        ("cycle4 x100", cycle(4, 100)),
        ("cycle5 x100", cycle(5, 100)),
    ] {
        let eval = |cache: &EvalCache| {
            w.mapping
                .evaluate_cached(&w.db, &funcs, Some(cache))
                .expect("valid")
                .len()
        };
        let probe = EvalCache::new();
        eval(&probe);
        let working = probe.stats().bytes.max(1);
        for pct in [100usize, 50, 25, 10] {
            for policy in [
                clio_incr::EvictionPolicy::Lru,
                clio_incr::EvictionPolicy::CostAware,
            ] {
                let cache = EvalCache::with_capacity((working * pct / 100).max(1));
                cache.set_policy(policy);
                eval(&cache); // cold fill under the budget
                for _ in 0..8 {
                    cache.bump_version("R0");
                    eval(&cache);
                }
                let post_edit = time(|| {
                    cache.bump_version("R0");
                    std::hint::black_box(eval(&cache));
                });
                let before = cache.stats();
                for _ in 0..4 {
                    cache.bump_version("R0");
                    eval(&cache);
                }
                let s = cache.stats();
                let (hits, misses) = (s.hits - before.hits, s.misses - before.misses);
                println!(
                    "| {name} | {pct}% | {} | {} | {hits} | {misses} | {:.0}% | {} |",
                    policy.name(),
                    fmt(post_edit),
                    100.0 * hits as f64 / (hits + misses).max(1) as f64,
                    s.evictions - before.evictions,
                );
            }
        }
    }
}

fn b12_persistence() {
    use clio_incr::CacheStore;

    println!("\n## B12 — persistent cache: cold vs disk-warm vs memory-warm\n");
    println!(
        "| workload | cold | disk-warm | mem-warm | cold/disk-warm | disk hits/replay \
         | disk bytes |"
    );
    println!("|---|---|---|---|---|---|---|");
    let funcs = FuncRegistry::with_builtins();
    for (name, w) in [
        ("chain4 x100", chain(4, 100)),
        ("chain4 x1000", chain(4, 1000)),
        ("star5 x1000", star(5, 1000)),
        ("cycle4 x100", cycle(4, 100)),
    ] {
        let dir = std::env::temp_dir().join(format!(
            "clio-bench-b12-{}-{}",
            std::process::id(),
            name.replace(' ', "-")
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store: std::sync::Arc<dyn CacheStore> = std::sync::Arc::new(
            clio_incr::DiskStore::open(&dir, clio_incr::database_digest(&w.db)),
        );
        let eval = |cache: &EvalCache| {
            w.mapping
                .evaluate_cached(&w.db, &funcs, Some(cache))
                .expect("valid")
                .len()
        };
        // cold: a fresh cache with no store, every rep recomputes
        let cold = time(|| {
            let c = EvalCache::new();
            std::hint::black_box(eval(&c));
        });
        // populate the store once (insert-time spills)
        let spiller = EvalCache::new();
        spiller.set_store(Some(std::sync::Arc::clone(&store)));
        eval(&spiller);
        // disk-warm: memory tier dropped before each rep — the restart
        // path, where every lookup is decoded from the store's files
        let cache = EvalCache::new();
        cache.set_store(Some(std::sync::Arc::clone(&store)));
        let disk_warm = time(|| {
            cache.clear();
            std::hint::black_box(eval(&cache));
        });
        let before = store.stats().hits;
        cache.clear();
        eval(&cache);
        let hits_per_replay = store.stats().hits - before;
        // mem-warm: entries resident, the store is never consulted
        eval(&cache);
        let mem_warm = time(|| {
            std::hint::black_box(eval(&cache));
        });
        println!(
            "| {name} | {} | {} | {} | {} | {hits_per_replay} | {} |",
            fmt(cold),
            fmt(disk_warm),
            fmt(mem_warm),
            ratio(cold, disk_warm),
            store.stats().bytes,
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

fn b11_concurrent_sessions() {
    use clio_core::session::Session;
    use clio_core::session_pool::SessionPool;

    println!("\n## B11 — concurrent session service: shared snapshot vs per-session copies\n");
    println!(
        "| sessions | per-session copy (serial) | pooled width 1 | pooled width N \
         | copy/pooled-N | sessions/s (pooled N) |"
    );
    println!("|---|---|---|---|---|---|");
    // a big shared source for many small sessions: per-session setup
    // (deep copy + index rebuild) dominates, which is what Arc sharing
    // removes
    let w = service_workload(6, 12_000);
    let mapping = w.mapping.clone();
    let run_one = |mut s: Session| {
        s.adopt_mapping(mapping.clone(), "b11 session")
            .expect("valid");
        std::hint::black_box(s.target_preview().expect("valid").len());
    };
    for sessions in [1usize, 2, 4, 8] {
        let copies = time(|| {
            for _ in 0..sessions {
                run_one(Session::new(w.db.clone(), w.target.clone()));
            }
        });
        let pool = SessionPool::new(w.db.clone(), w.target.clone());
        let pooled_serial = time(|| {
            pool.clone().with_width(1).run(sessions, |_, s| run_one(s));
        });
        let pooled_wide = time(|| {
            pool.clone()
                .with_width(sessions)
                .run(sessions, |_, s| run_one(s));
        });
        let throughput = sessions as f64 / pooled_wide.as_secs_f64();
        println!(
            "| {sessions} | {} | {} | {} | {} | {throughput:.1} |",
            fmt(copies),
            fmt(pooled_serial),
            fmt(pooled_wide),
            ratio(copies, pooled_wide),
        );
    }
}

fn b13_timing_telemetry() {
    println!("\n## B13 — timing telemetry: span latency histograms under tracing\n");
    let funcs = FuncRegistry::with_builtins();
    let w = chain(4, 1000);
    let eval = || {
        let cache = EvalCache::new();
        std::hint::black_box(
            w.mapping
                .evaluate_cached(&w.db, &funcs, Some(&cache))
                .expect("valid")
                .len(),
        );
    };
    // tracing overhead: the same evaluation with spans off and on (the
    // on-path also feeds histograms and the event ring)
    let off = time(&eval);
    clio_obs::clear_histograms();
    clio_obs::clear_events();
    clio_obs::set_trace_enabled(true);
    let on = time(&eval);
    clio_obs::set_trace_enabled(false);
    let _ = clio_obs::take_spans();
    clio_obs::clear_events();
    let hists = clio_obs::snapshot_histograms();
    clio_obs::clear_histograms();
    println!(
        "tracing overhead on chain4 x1000 mapping evaluation: off {} vs on {} ({})\n",
        fmt(off),
        fmt(on),
        ratio(on, off),
    );
    println!("| span | count | p50 | p90 | p99 | max |");
    println!("|---|---|---|---|---|---|");
    for (name, h) in &hists {
        println!(
            "| {name} | {} | {} | {} | {} | {} |",
            h.count,
            clio_obs::fmt_ns(u128::from(h.percentile(50))),
            clio_obs::fmt_ns(u128::from(h.percentile(90))),
            clio_obs::fmt_ns(u128::from(h.percentile(99))),
            clio_obs::fmt_ns(u128::from(h.max_ns)),
        );
    }
}

fn b15_networked_clients() {
    use std::sync::Arc;

    use clio_cli::engine::Shell;
    use clio_cli::serve::ShellHandler;
    use clio_core::session_pool::SessionPool;
    use clio_datagen::paper::{kids_target, paper_database};
    use clio_incr::{CacheStore, MemStore};
    use clio_net::{Client, Handler, Server, ServerConfig};

    // The demo session's command body (examples/scripts/demo.clio minus
    // comments and `quit`): every client replays the full
    // refine-and-accept loop over its own connection.
    const SCRIPT: [&str; 16] = [
        "corr Children.ID -> ID",
        "accept",
        "corr Children.name -> name",
        "corr Parents.affiliation -> affiliation",
        "confirm 1",
        "target",
        "illustration",
        "chase Children.ID 002",
        "confirm 3",
        "corr SBPS.time -> BusSchedule",
        "require BusSchedule",
        "mapping",
        "sql",
        "accept",
        "target",
        "contributions",
    ];

    println!("\n## B15 — networked service: concurrent clients over loopback TCP\n");
    println!(
        "| clients | cold shared store | warm shared store | cold/warm \
         | commands/s (warm) | store loads/client (warm) |"
    );
    println!("|---|---|---|---|---|---|");

    // One timed drive: start an in-process server over a pool sharing
    // `store`, run `clients` concurrent connections each replaying the
    // script, and return the wall-clock from first connect to last
    // response. Server startup and teardown stay outside the clock.
    let drive = |clients: usize, store: &Arc<dyn CacheStore>| -> Duration {
        let mut pool =
            SessionPool::new(paper_database(), kids_target()).with_store(Arc::clone(store));
        pool.set_cache_enabled(true);
        let config = ServerConfig {
            max_conns: clients,
            ..ServerConfig::default()
        };
        let server = Server::bind(("127.0.0.1", 0), config).expect("bind");
        let addr = server.local_addr().expect("local addr");
        let handle = server.shutdown_handle();
        std::thread::scope(|s| {
            let server_thread = s.spawn(|| {
                server.run(|_conn| {
                    Box::new(ShellHandler::new(Shell::new(pool.session()))) as Box<dyn Handler>
                })
            });
            let t = Instant::now();
            std::thread::scope(|cs| {
                for _ in 0..clients {
                    cs.spawn(|| {
                        let mut client = Client::connect(addr).expect("connect");
                        for line in SCRIPT {
                            let response = client.request(line).expect("request");
                            std::hint::black_box(response.expect("connection open").len());
                        }
                    });
                }
            });
            let elapsed = t.elapsed();
            handle.shutdown();
            server_thread
                .join()
                .expect("server thread")
                .expect("server run");
            elapsed
        })
    };

    for clients in [1usize, 2, 4, 8] {
        // cold: the shared store starts empty each rep, so the first
        // connection computes and spills while later ones warm mid-rep
        let cold = median(
            (0..REPS)
                .map(|_| {
                    let store: Arc<dyn CacheStore> = Arc::new(MemStore::new());
                    drive(clients, &store)
                })
                .collect(),
        );
        // warm: one un-timed client populates the store; every timed
        // connection then answers its evaluations from shared entries
        let store: Arc<dyn CacheStore> = Arc::new(MemStore::new());
        drive(1, &store);
        let warm = median((0..REPS).map(|_| drive(clients, &store)).collect());
        let work = counted(|| {
            drive(clients, &store);
        });
        let loads_per_client = work.get(clio_obs::Counter::CacheDiskHits) as f64 / clients as f64;
        let commands_per_sec = (clients * SCRIPT.len()) as f64 / warm.as_secs_f64();
        println!(
            "| {clients} | {} | {} | {} | {commands_per_sec:.0} | {loads_per_client:.1} |",
            fmt(cold),
            fmt(warm),
            ratio(cold, warm),
        );
    }
}

fn b16_paged_backend() {
    use clio_relational::storage::{open_paged, save_database};

    println!("\n## B16 — paged backend: buffer-pool size vs working set\n");
    println!(
        "| pool pages | heap pages | open+scan | pager hits | misses | evictions | hit rate |"
    );
    println!("|---|---|---|---|---|---|---|");
    let w = chain(4, 2000);
    let dir = std::env::temp_dir().join(format!("clio-bench-b16-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    // 1 KiB pages keep the heap files many pages long, so small pools
    // genuinely thrash and large ones genuinely fit the working set.
    const PAGE_SIZE: u64 = 1024;
    save_database(&w.db, &dir, PAGE_SIZE as usize).expect("save");
    // data pages across the heap files (page 0 of each file is its header)
    let heap_pages: u64 = std::fs::read_dir(&dir)
        .expect("read dir")
        .filter_map(std::result::Result::ok)
        .filter(|e| {
            let path = e.path();
            path.extension().is_some_and(|x| x == "clh")
                && !path
                    .file_name()
                    .is_some_and(|n| n.to_string_lossy().starts_with('_'))
        })
        .map(|e| e.metadata().expect("metadata").len() / PAGE_SIZE - 1)
        .sum();
    for pool in [4usize, 16, 64, 256, 512, 1024] {
        // open (one eager integrity scan of every heap file through the
        // pool) plus a full materializing scan of every relation — the
        // paged path a session start performs
        let open_and_scan = || {
            let db = open_paged(&dir, pool).expect("open");
            let rows: usize = db
                .relations()
                .map(clio_relational::relation::Relation::len)
                .sum();
            std::hint::black_box(rows);
        };
        let t = time(open_and_scan);
        let work = counted(open_and_scan);
        let hits = work.get(clio_obs::Counter::PagerHits);
        let misses = work.get(clio_obs::Counter::PagerMisses);
        let evictions = work.get(clio_obs::Counter::PagerEvictions);
        println!(
            "| {pool} | {heap_pages} | {} | {hits} | {misses} | {evictions} | {:.0}% |",
            fmt(t),
            100.0 * hits as f64 / (hits + misses).max(1) as f64,
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

fn b17_planned_evaluation() {
    println!("\n## B17 — planner vs definitional evaluation on cyclic workloads\n");
    println!(
        "| nodes | rows/rel | source filter | definitional | planned | speedup \
         | pushed | pruned subgraphs | rows out |"
    );
    println!("|---|---|---|---|---|---|---|---|---|");
    let funcs = FuncRegistry::with_builtins();
    for (n, rows) in [(3usize, 100usize), (4, 60), (5, 30)] {
        let w = cycle(n, rows);
        for filter in ["(none)", "R0.id LIKE 'r0-1%'", "R0.p0 IS NOT NULL"] {
            let mut m = w.mapping.clone();
            if filter != "(none)" {
                m.source_filters.push(parse_expr(filter).expect("filter"));
            }
            let baseline = m.evaluate(&w.db, &funcs).expect("definitional");
            let planned = m.evaluate_planned(&w.db, &funcs).expect("planned");
            assert_eq!(
                baseline.rows(),
                planned.rows(),
                "plan must be byte-identical"
            );
            let out = planned.len();
            let def_t = time(|| {
                std::hint::black_box(m.evaluate(&w.db, &funcs).expect("definitional").len());
            });
            let plan_t = time(|| {
                std::hint::black_box(m.evaluate_planned(&w.db, &funcs).expect("planned").len());
            });
            let work = counted(|| {
                let _ = m.evaluate_planned(&w.db, &funcs);
            });
            println!(
                "| {n} | {rows} | {filter} | {} | {} | {} | {} | {} | {out} |",
                fmt(def_t),
                fmt(plan_t),
                ratio(def_t, plan_t),
                work.get(clio_obs::Counter::PlanPushedFilters),
                work.get(clio_obs::Counter::PlanPrunedSubgraphs),
            );
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let run = |key: &str| args.is_empty() || args.iter().any(|a| a.eq_ignore_ascii_case(key));
    println!("# Clio reproduction — experiment sweeps (median of {REPS} runs)");
    if run("b1") {
        b1_full_disjunction();
    }
    if run("b2") {
        b2_subsumption();
    }
    if run("b3") {
        b3_illustration();
    }
    if run("b4") {
        b4_walk();
    }
    if run("b5") {
        b5_chase();
    }
    if run("b6") {
        b6_mapping_eval();
    }
    if run("b7") {
        b7_evolution();
    }
    if run("b8") {
        b8_expressions();
    }
    if run("b9") {
        b9_join_ablation();
    }
    if run("b10") {
        b10_warm_path();
        b10_eviction_pressure();
    }
    if run("b11") {
        b11_concurrent_sessions();
    }
    if run("b12") {
        b12_persistence();
    }
    if run("b13") {
        b13_timing_telemetry();
    }
    if run("b14") {
        b14_policy_budget_sweep();
    }
    if run("b15") {
        b15_networked_clients();
    }
    if run("b16") {
        b16_paged_backend();
    }
    if run("b17") {
        b17_planned_evaluation();
    }
}
