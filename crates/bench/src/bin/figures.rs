//! Regenerate every paper figure as ASCII tables.
//!
//! ```sh
//! cargo run -p clio-bench --bin figures            # all figures
//! cargo run -p clio-bench --bin figures -- f8 f9   # a subset
//! ```

use clio_core::association::AssociationSet;
use clio_core::correspondence::ValueCorrespondence;
use clio_core::focus::{focused_examples, Focus};
use clio_core::full_disjunction::{full_associations, full_disjunction, FdAlgo};
use clio_core::illustration::Illustration;
use clio_core::mapping::Mapping;
use clio_core::operators::chase::data_chase;
use clio_core::operators::walk::data_walk;
use clio_core::query_graph::{Node, QueryGraph};
use clio_core::sql::{generate_sql, SqlOptions};
use clio_core::subgraph::connected_subsets;
use clio_datagen::paper::{
    example_3_15_mapping, figure6_graph, kids_target, paper_database, paper_knowledge,
    running_graph, section2_mapping,
};
use clio_relational::error::Result;
use clio_relational::funcs::FuncRegistry;
use clio_relational::index::ValueIndex;
use clio_relational::parser::parse_expr;
use clio_relational::value::Value;

fn wanted(args: &[String], key: &str) -> bool {
    args.is_empty() || args.iter().any(|a| a.eq_ignore_ascii_case(key))
}

fn heading(title: &str) {
    println!("\n================ {title} ================");
}

fn main() -> Result<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let db = paper_database();
    let funcs = FuncRegistry::with_builtins();

    if wanted(&args, "f1") {
        heading("Figure 1: source database");
        print!("{db}");
    }

    if wanted(&args, "f2") {
        heading("Figure 2: correspondences v1, v2 and the target sample");
        let mut g = QueryGraph::new();
        g.add_node(Node::new("Children"))?;
        let m = Mapping::new(g, kids_target())
            .with_correspondence(ValueCorrespondence::identity("Children.ID", "ID"))
            .with_correspondence(ValueCorrespondence::identity("Children.name", "name"))
            .with_target_not_null_filters();
        println!("(a) correspondences:");
        for v in &m.correspondences {
            println!("    {v}");
        }
        println!("(b) source sample (Children):");
        print!("{}", db.relation("Children")?);
        println!("(c) current target:");
        print!("{}", m.evaluate(&db, &funcs)?);
    }

    if wanted(&args, "f3") {
        heading("Figure 3: two ways of associating children with affiliations");
        let knowledge = paper_knowledge();
        let mut g = QueryGraph::new();
        g.add_node(Node::new("Children"))?;
        let m = Mapping::new(g, kids_target())
            .with_correspondence(ValueCorrespondence::identity("Children.ID", "ID"))
            .with_correspondence(ValueCorrespondence::identity("Children.name", "name"))
            .with_correspondence(ValueCorrespondence::identity(
                "Parents.affiliation",
                "affiliation",
            ))
            .with_target_not_null_filters();
        // correspondence references Parents; enumerate the walks
        let base = {
            let mut g = QueryGraph::new();
            g.add_node(Node::new("Children"))?;
            let mut b = m.clone();
            b.graph = g;
            b.correspondences.retain(|c| c.target_attr != "affiliation");
            b
        };
        let alts = data_walk(&base, &db, &knowledge, "Children", "Parents", 2, &funcs)?;
        for (i, alt) in alts.iter().enumerate() {
            let mut scenario = alt.mapping.clone();
            scenario.set_correspondence(ValueCorrespondence::identity(
                "Parents.affiliation",
                "affiliation",
            ));
            println!("\nScenario {}: {}", i + 1, alt.description);
            // focused on Maya, the example the user knows
            let node = scenario.graph.node_by_alias("Children").unwrap();
            let focus = Focus::on_value(&scenario, &db, node, "ID", &Value::str("002"))?;
            let examples = focused_examples(&scenario, &db, &funcs, &focus)?;
            let scheme = scenario.graph.scheme(&db)?;
            let refs: Vec<&clio_core::example::Example> = examples.iter().collect();
            print!(
                "{}",
                clio_core::example::render_examples(&scenario.graph, &scheme, &refs)
            );
        }
    }

    if wanted(&args, "f4") {
        heading("Figure 4: scenarios associating children with phone numbers");
        let knowledge = paper_knowledge();
        let mut g = QueryGraph::new();
        let c = g.add_node(Node::new("Children"))?;
        let p = g.add_node(Node::new("Parents"))?;
        g.add_edge(c, p, parse_expr("Children.fid = Parents.ID")?)?;
        let m = Mapping::new(g, kids_target())
            .with_correspondence(ValueCorrespondence::identity("Children.ID", "ID"))
            .with_target_not_null_filters();
        let alts = data_walk(&m, &db, &knowledge, "Children", "PhoneDir", 3, &funcs)?;
        for (i, alt) in alts.iter().enumerate() {
            println!("\nScenario {}: {}", i + 1, alt.description);
            println!("{}", alt.mapping.graph);
        }
    }

    if wanted(&args, "f5") {
        heading("Figure 5: chasing value 002 (Maya's ID)");
        let index = ValueIndex::build(&db);
        let mut g = QueryGraph::new();
        g.add_node(Node::new("Children"))?;
        let m = Mapping::new(g, kids_target())
            .with_correspondence(ValueCorrespondence::identity("Children.ID", "ID"));
        let alts = data_chase(
            &m,
            &db,
            &index,
            "Children",
            "ID",
            &Value::str("002"),
            &funcs,
        )?;
        for (i, alt) in alts.iter().enumerate() {
            println!("Scenario {}: {}", i + 1, alt.description);
        }
    }

    if wanted(&args, "f6") {
        heading("Figure 6: query graphs and Example 3.12 subgraphs");
        let g = figure6_graph();
        print!("{g}");
        let subs = connected_subsets(&g);
        let tags: Vec<String> = subs.iter().map(|&s| g.coverage_tag(s)).collect();
        println!("induced connected subgraphs: {}", tags.join(", "));
    }

    if wanted(&args, "f7") {
        heading("Figure 7: data associations t, u, v");
        let g = figure6_graph();
        let scheme = g.scheme(&db)?;
        let f_cp = full_associations(&db, &g, 0b011, &funcs)?;
        let t = f_cp
            .rows()
            .iter()
            .find(|r| r[0] == Value::str("002"))
            .expect("Maya")
            .clone();
        let u = AssociationSet::pad_row(&scheme, f_cp.scheme(), &t)?;
        let f_full = full_associations(&db, &g, 0b111, &funcs)?;
        let v_row = f_full
            .rows()
            .iter()
            .find(|r| r[0] == Value::str("002"))
            .expect("Maya full")
            .clone();
        let v = AssociationSet::pad_row(&scheme, f_full.scheme(), &v_row)?;
        let rows = vec![u.clone(), v.clone()];
        let tags = vec!["u (possible, padded)".to_owned(), "v (full)".to_owned()];
        print!(
            "{}",
            clio_relational::display::render_table(&scheme, &rows, &tags)
        );
        println!(
            "v strictly subsumes u: {}",
            clio_relational::ops::strictly_subsumes(&v, &u)
        );
    }

    if wanted(&args, "f8") {
        heading("Figure 8: D(G) of the running graph, tagged with coverage");
        let g = running_graph();
        let mut d = full_disjunction(&db, &g, FdAlgo::Auto, &funcs)?;
        d.sort_canonical(&g);
        print!("{}", d.render(&g));
    }

    if wanted(&args, "f9") {
        heading("Figure 9: minimal sufficient illustration of Example 3.15");
        let m = example_3_15_mapping();
        let population = m.examples(&db, &funcs)?;
        let ill = Illustration::minimal_sufficient(&population, m.target.arity());
        let scheme = m.graph.scheme(&db)?;
        print!("{}", ill.render(&m.graph, &scheme));
        let (pos, neg) = ill.polarity_counts();
        println!("{pos} positive / {neg} negative example(s)");
    }

    if wanted(&args, "f10") || wanted(&args, "f11") {
        heading("Figures 10-11: walks(G1, Children, PhoneDir)");
        let knowledge = paper_knowledge();
        let mut g1 = QueryGraph::new();
        let c = g1.add_node(Node::new("Children"))?;
        let p = g1.add_node(Node::new("Parents"))?;
        g1.add_edge(c, p, parse_expr("Children.fid = Parents.ID")?)?;
        let m = Mapping::new(g1, kids_target())
            .with_correspondence(ValueCorrespondence::identity("Children.ID", "ID"));
        let alts = data_walk(&m, &db, &knowledge, "Children", "PhoneDir", 3, &funcs)?;
        for (i, alt) in alts.iter().enumerate() {
            println!("\nG{}: {}", i + 2, alt.description);
            println!("{}", alt.mapping.graph);
        }
    }

    if wanted(&args, "f12") {
        heading("Figure 12: chase extensions of G1");
        let index = ValueIndex::build(&db);
        let m = Mapping::new(figure6_graph(), kids_target())
            .with_correspondence(ValueCorrespondence::identity("Children.ID", "ID"));
        let alts = data_chase(
            &m,
            &db,
            &index,
            "Children",
            "ID",
            &Value::str("002"),
            &funcs,
        )?;
        for alt in &alts {
            println!("{}", alt.mapping.graph);
        }
    }

    if wanted(&args, "sql") {
        heading("Section 2: generated SQL for the final mapping");
        let sql = generate_sql(
            &section2_mapping(),
            &db,
            &SqlOptions {
                root: Some("Children".into()),
                create_view: true,
            },
        )?;
        println!("{sql}");
    }

    Ok(())
}
