//! `clio-bench` — benchmark harness for the Clio reproduction.
//!
//! One Criterion bench per efficiency claim in the paper (see DESIGN.md,
//! benches B1–B9), plus two binaries:
//!
//! * `figures` — regenerates every paper figure as ASCII tables;
//! * `experiments` — runs the parameter sweeps recorded in
//!   EXPERIMENTS.md and prints one table per experiment.

#![warn(missing_docs)]

use clio_core::full_disjunction::{full_disjunction_naive, FdAlgo};
use clio_core::mapping::Mapping;
use clio_datagen::synthetic::{generate, Synthetic, SyntheticSpec, Topology};
use clio_relational::funcs::FuncRegistry;
use clio_relational::ops::SubsumptionAlgo;
use clio_relational::relation::RelationBuilder;
use clio_relational::schema::{Column, Scheme};
use clio_relational::table::Table;
use clio_relational::value::{DataType, Value};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Standard workload: a chain of `n` relations with `rows` rows each.
#[must_use]
pub fn chain(n: usize, rows: usize) -> Synthetic {
    generate(&SyntheticSpec {
        topology: Topology::Chain,
        relations: n,
        rows,
        match_rate: 0.7,
        payload_attrs: 1,
        seed: 0xC11A,
    })
}

/// Standard workload: a star of `n` relations with `rows` rows each.
#[must_use]
pub fn star(n: usize, rows: usize) -> Synthetic {
    generate(&SyntheticSpec {
        topology: Topology::Star,
        relations: n,
        rows,
        match_rate: 0.7,
        payload_attrs: 1,
        seed: 0xC11A,
    })
}

/// Standard workload: a cycle of `n` relations with `rows` rows each.
#[must_use]
pub fn cycle(n: usize, rows: usize) -> Synthetic {
    generate(&SyntheticSpec {
        topology: Topology::Cycle,
        relations: n,
        rows,
        match_rate: 0.7,
        payload_attrs: 1,
        seed: 0xC11A,
    })
}

/// The B11 session-service workload: a small 2-relation chain (the slice
/// each session actually maps, 400 rows per relation) embedded in a
/// source database padded with `archive_relations` unrelated relations
/// of `archive_rows` string rows each. This is the shape a session
/// service sees — one large shared source instance, many sessions each
/// touching a small part of it — so per-session snapshot setup (deep
/// copy + value-index rebuild) dominates per-session query work, which
/// is exactly the cost `Arc` sharing removes.
#[must_use]
pub fn service_workload(archive_relations: usize, archive_rows: usize) -> Synthetic {
    let mut w = generate(&SyntheticSpec {
        topology: Topology::Chain,
        relations: 2,
        rows: 400,
        match_rate: 0.7,
        payload_attrs: 1,
        seed: 0xB11,
    });
    let mut rng = StdRng::seed_from_u64(0xB11);
    for r in 0..archive_relations {
        let mut b = RelationBuilder::new(format!("Archive{r}"));
        for c in 0..4 {
            b = b.attr(format!("a{c}"), DataType::Str);
        }
        for i in 0..archive_rows {
            b = b.row(
                (0..4)
                    .map(|c| Value::str(format!("v{r}_{c}_{}", i ^ rng.random_range(0..1024))))
                    .collect(),
            );
        }
        w.db.add_relation(b.build().expect("valid archive relation"))
            .expect("fresh archive name");
    }
    w
}

/// A random table with `rows` rows, `arity` columns, and roughly
/// `null_rate` nulls — the subsumption-removal workload. Values are drawn
/// from a small domain so that subsumption pairs actually occur.
#[must_use]
pub fn nullable_table(rows: usize, arity: usize, null_rate: f64, seed: u64) -> Table {
    let scheme = Scheme::new(
        (0..arity)
            .map(|i| Column::new("R", format!("a{i}"), DataType::Int))
            .collect(),
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Table::empty(scheme);
    for _ in 0..rows {
        let row: Vec<Value> = (0..arity)
            .map(|_| {
                if rng.random::<f64>() < null_rate {
                    Value::Null
                } else {
                    Value::Int(rng.random_range(0..6))
                }
            })
            .collect();
        if row.iter().all(Value::is_null) {
            out.push(vec![Value::Int(0); arity]);
        } else {
            out.push(row);
        }
    }
    out
}

/// The full example population of a workload's mapping (illustration
/// selection input).
#[must_use]
pub fn example_population(w: &Synthetic) -> Vec<clio_core::example::Example> {
    let funcs = FuncRegistry::with_builtins();
    w.mapping.examples(&w.db, &funcs).expect("valid workload")
}

/// Convenience: run the naive full disjunction with a chosen subsumption
/// algorithm (the B1/B2 baselines).
#[must_use]
pub fn fd_naive(w: &Synthetic, algo: SubsumptionAlgo) -> usize {
    let funcs = FuncRegistry::with_builtins();
    full_disjunction_naive(&w.db, &w.graph, &funcs, algo)
        .expect("valid workload")
        .len()
}

/// Convenience: run any FD algorithm, returning the association count.
#[must_use]
pub fn fd(w: &Synthetic, algo: FdAlgo) -> usize {
    let funcs = FuncRegistry::with_builtins();
    clio_core::full_disjunction::full_disjunction(&w.db, &w.graph, algo, &funcs)
        .expect("valid workload")
        .len()
}

/// A `prefix`-relation prefix mapping of a chain workload (evolution
/// baseline: the mapping before the graph was extended).
#[must_use]
pub fn chain_prefix_mapping(w: &Synthetic, prefix: usize) -> Mapping {
    use clio_core::query_graph::{Node, QueryGraph};
    let mut g = QueryGraph::new();
    for i in 0..prefix {
        g.add_node(Node::new(format!("R{i}"))).expect("fresh");
    }
    for i in 0..prefix.saturating_sub(1) {
        g.add_edge(
            i,
            i + 1,
            clio_relational::expr::Expr::col_eq(&format!("R{}.l{i}", i + 1), &format!("R{i}.id")),
        )
        .expect("valid");
    }
    let mut m = w.mapping.clone();
    m.graph = g;
    let keep: Vec<String> = (0..prefix).map(|i| format!("R{i}")).collect();
    m.correspondences.retain(|c| {
        c.source_qualifiers()
            .iter()
            .all(|q| keep.contains(&(*q).to_owned()))
    });
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_build() {
        assert!(fd(&chain(3, 20), FdAlgo::Auto) > 0);
        assert!(fd(&star(3, 20), FdAlgo::Auto) > 0);
        assert!(fd(&cycle(4, 10), FdAlgo::Naive) > 0);
    }

    #[test]
    fn nullable_table_has_no_all_null_rows() {
        let t = nullable_table(200, 4, 0.5, 1);
        assert_eq!(t.len(), 200);
        assert!(t.rows().iter().all(|r| !r.iter().all(Value::is_null)));
    }

    #[test]
    fn naive_and_optimized_fd_agree_on_bench_workloads() {
        let w = chain(4, 50);
        assert_eq!(fd(&w, FdAlgo::Naive), fd(&w, FdAlgo::OuterJoin));
        assert_eq!(
            fd_naive(&w, SubsumptionAlgo::Naive),
            fd_naive(&w, SubsumptionAlgo::Partitioned)
        );
    }

    #[test]
    fn chain_prefix_mapping_is_valid() {
        let w = chain(4, 20);
        let m = chain_prefix_mapping(&w, 2);
        let funcs = FuncRegistry::with_builtins();
        m.validate(&w.db, &funcs).unwrap();
        assert_eq!(m.graph.node_count(), 2);
    }

    #[test]
    fn example_population_nonempty() {
        let w = chain(3, 20);
        assert!(!example_population(&w).is_empty());
    }
}
