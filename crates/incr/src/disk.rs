//! The on-disk [`CacheStore`]: fingerprint-keyed files under a cache
//! directory, surviving process restarts.
//!
//! ## File format (version 2)
//!
//! One entry per file, named `{namespace:016x}-{fingerprint:016x}.clc`.
//! All integers are little-endian; strings are `u32` length + UTF-8
//! bytes. Layout:
//!
//! ```text
//! magic      b"CLIC"
//! version    u32            (currently 2)
//! namespace  u64            (database_digest of the source)
//! fp         u64            (the entry fingerprint)
//! cost_ns    u64            (measured recompute time; 0 = unknown)
//! deps       u32 count, then count strings
//! scheme     u32 ncols, then per column: qualifier, name, u8 type tag
//! rows       u64 nrows, then nrows × ncols tagged values
//! checksum   u64            (FNV-1a 64 over everything above)
//! ```
//!
//! Value tags: `0` null, `1` int (`i64`), `2` float (`f64` bit pattern),
//! `3` string, `4` bool (`u8`).
//!
//! Version 2 added `cost_ns` (between `fp` and `deps`) so a warm
//! restart re-seeds the cost-aware eviction priorities. Version-1 files
//! are rejected like any other version mismatch — one rate-limited
//! warning, a `cache.load_errors` count, and a cold recompute that
//! rewrites the entry in the current format.
//!
//! ## Crash safety and tolerance
//!
//! Writes go to a `.tmp-{pid}-{seq}` file in the same directory and are
//! renamed into place, so readers never observe a half-written entry
//! and concurrent sessions spilling the same fingerprint race
//! harmlessly (both rename byte-identical content). Reads never trust
//! the directory: a truncated file, a wrong magic/version, a namespace
//! or fingerprint mismatch, or a failed checksum logs one line to
//! stderr (rate-limited per category via [`clio_obs::warn_limited`], so
//! a directory of corrupt files cannot flood the terminal), counts
//! `cache.load_errors`, and behaves as a miss — the cache recomputes,
//! so a damaged directory can degrade performance but never an answer.
//! An unusable directory (e.g. unwritable) degrades the store to an
//! inert no-op the same way.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use clio_relational::schema::{Column, Scheme};
use clio_relational::table::Table;
use clio_relational::value::{DataType, Value};

use crate::fingerprint::Fingerprint;
use crate::store::{CacheStore, StoreCounters, StoreStats, StoredEntry};

/// Current file format version.
pub const FORMAT_VERSION: u32 = 2;

const MAGIC: &[u8; 4] = b"CLIC";
const FNV_OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut state = FNV_OFFSET_BASIS;
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// A persistent [`CacheStore`] over a directory of entry files.
#[derive(Debug)]
pub struct DiskStore {
    /// `None` when the directory proved unusable at open time; the
    /// store then answers every call as an inert no-op.
    dir: Option<PathBuf>,
    namespace: u64,
    seq: AtomicU64,
    counters: StoreCounters,
}

impl DiskStore {
    /// Open (creating if needed) a store over `dir`, namespaced by
    /// `namespace` (a [`database_digest`](crate::store::database_digest)
    /// of the source). Never errors: an unusable directory is reported
    /// once on stderr, counted as a load error, and yields a degraded
    /// store that spills nothing and loads nothing.
    #[must_use]
    pub fn open(dir: &Path, namespace: u64) -> DiskStore {
        let usable = fs::create_dir_all(dir)
            .and_then(|()| {
                // Probe writability up front so degradation happens once,
                // loudly, instead of once per spill.
                let probe = dir.join(format!(".probe-{}", std::process::id()));
                fs::write(&probe, b"")?;
                fs::remove_file(&probe)
            })
            .map(|()| dir.to_path_buf());
        let counters = StoreCounters::default();
        let dir = match usable {
            Ok(dir) => Some(dir),
            Err(e) => {
                clio_obs::warn_limited(
                    "cache.dir",
                    &format!(
                        "cache dir `{}` unusable ({e}); continuing without persistence",
                        dir.display()
                    ),
                );
                counters.record_load_error();
                None
            }
        };
        DiskStore {
            dir,
            namespace,
            seq: AtomicU64::new(0),
            counters,
        }
    }

    /// The namespace this store serves.
    #[must_use]
    pub fn namespace(&self) -> u64 {
        self.namespace
    }

    /// Is the store degraded (directory unusable)?
    #[must_use]
    pub fn degraded(&self) -> bool {
        self.dir.is_none()
    }

    fn entry_path(&self, dir: &Path, fp: Fingerprint) -> PathBuf {
        dir.join(format!("{:016x}-{:016x}.clc", self.namespace, fp.0))
    }

    fn read_entry(&self, path: &Path, fp: Fingerprint) -> Option<StoredEntry> {
        let bytes = match fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return None,
            Err(e) => {
                clio_obs::warn_limited(
                    "cache.load",
                    &format!(
                        "cache entry `{}` unreadable ({e}); recomputing",
                        path.display()
                    ),
                );
                self.counters.record_load_error();
                return None;
            }
        };
        match decode(&bytes, self.namespace, fp) {
            Ok(entry) => Some(entry),
            Err(why) => {
                clio_obs::warn_limited(
                    "cache.load",
                    &format!(
                        "cache entry `{}` rejected ({why}); recomputing",
                        path.display()
                    ),
                );
                self.counters.record_load_error();
                None
            }
        }
    }
}

impl CacheStore for DiskStore {
    fn load(&self, fp: Fingerprint) -> Option<StoredEntry> {
        let dir = self.dir.as_deref()?;
        let entry = self.read_entry(&self.entry_path(dir, fp), fp)?;
        self.counters.record_hit();
        Some(entry)
    }

    fn spill(&self, fp: Fingerprint, entry: &StoredEntry) -> bool {
        let Some(dir) = self.dir.as_deref() else {
            return false;
        };
        let path = self.entry_path(dir, fp);
        if path.exists() {
            return false;
        }
        let bytes = encode(self.namespace, fp, entry);
        let tmp = dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            self.seq.fetch_add(1, Ordering::Relaxed)
        ));
        let written = fs::File::create(&tmp)
            .and_then(|mut f| f.write_all(&bytes).and_then(|()| f.sync_all()))
            .and_then(|()| fs::rename(&tmp, &path));
        match written {
            Ok(()) => {
                self.counters.record_spill(bytes.len() as u64);
                true
            }
            Err(e) => {
                clio_obs::warn_limited(
                    "cache.spill",
                    &format!(
                        "cache spill to `{}` failed ({e}); continuing",
                        path.display()
                    ),
                );
                let _ = fs::remove_file(&tmp);
                self.counters.record_load_error();
                false
            }
        }
    }

    fn load_all(&self) -> Vec<(Fingerprint, StoredEntry)> {
        let Some(dir) = self.dir.as_deref() else {
            return Vec::new();
        };
        let prefix = format!("{:016x}-", self.namespace);
        let mut names: Vec<String> = match fs::read_dir(dir) {
            Ok(entries) => entries
                .filter_map(|e| e.ok())
                .filter_map(|e| e.file_name().into_string().ok())
                .filter(|n| n.starts_with(&prefix) && n.ends_with(".clc"))
                .collect(),
            Err(e) => {
                clio_obs::warn_limited(
                    "cache.dir",
                    &format!(
                        "cache dir `{}` unreadable ({e}); loading nothing",
                        dir.display()
                    ),
                );
                self.counters.record_load_error();
                return Vec::new();
            }
        };
        names.sort();
        let mut out = Vec::new();
        for name in names {
            let hex = &name[prefix.len()..name.len() - ".clc".len()];
            let Ok(raw) = u64::from_str_radix(hex, 16) else {
                continue;
            };
            let fp = Fingerprint(raw);
            if let Some(entry) = self.read_entry(&dir.join(&name), fp) {
                out.push((fp, entry));
            }
        }
        out
    }

    fn stats(&self) -> StoreStats {
        self.counters.stats()
    }

    fn describe(&self) -> String {
        match &self.dir {
            Some(dir) => format!("disk:{}", dir.display()),
            None => "disk:(degraded)".to_owned(),
        }
    }
}

fn put_u32(out: &mut Vec<u8>, n: u32) {
    out.extend_from_slice(&n.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, n: u64) {
    out.extend_from_slice(&n.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn type_tag(ty: DataType) -> u8 {
    match ty {
        DataType::Int => 0,
        DataType::Float => 1,
        DataType::Str => 2,
        DataType::Bool => 3,
    }
}

fn type_from_tag(tag: u8) -> Option<DataType> {
    Some(match tag {
        0 => DataType::Int,
        1 => DataType::Float,
        2 => DataType::Str,
        3 => DataType::Bool,
        _ => return None,
    })
}

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(0),
        Value::Int(i) => {
            out.push(1);
            put_u64(out, *i as u64);
        }
        Value::Float(f) => {
            out.push(2);
            put_u64(out, f.to_bits());
        }
        Value::Str(s) => {
            out.push(3);
            put_str(out, s);
        }
        Value::Bool(b) => {
            out.push(4);
            out.push(u8::from(*b));
        }
    }
}

/// Encode one entry into the version-2 file bytes (checksum included).
#[must_use]
pub fn encode(namespace: u64, fp: Fingerprint, entry: &StoredEntry) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    put_u32(&mut out, FORMAT_VERSION);
    put_u64(&mut out, namespace);
    put_u64(&mut out, fp.0);
    put_u64(&mut out, entry.cost_ns);
    put_u32(&mut out, entry.deps.len() as u32);
    for dep in &entry.deps {
        put_str(&mut out, dep);
    }
    let scheme = entry.table.scheme();
    put_u32(&mut out, scheme.arity() as u32);
    for col in scheme.columns() {
        put_str(&mut out, &col.qualifier);
        put_str(&mut out, &col.name);
        out.push(type_tag(col.ty));
    }
    put_u64(&mut out, entry.table.len() as u64);
    for row in entry.table.rows() {
        for v in row {
            put_value(&mut out, v);
        }
    }
    let checksum = fnv1a(&out);
    put_u64(&mut out, checksum);
    out
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self.pos.checked_add(n).ok_or("length overflow")?;
        if end > self.bytes.len() {
            return Err("truncated".to_owned());
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| "invalid UTF-8".to_owned())
    }

    fn value(&mut self) -> Result<Value, String> {
        Ok(match self.u8()? {
            0 => Value::Null,
            1 => Value::Int(self.u64()? as i64),
            2 => Value::Float(f64::from_bits(self.u64()?)),
            3 => Value::Str(self.str()?),
            4 => Value::Bool(self.u8()? != 0),
            tag => return Err(format!("unknown value tag {tag}")),
        })
    }
}

/// Decode version-2 file bytes, verifying magic, version, namespace,
/// fingerprint, and checksum. Any defect yields a description of why
/// the file was rejected.
pub fn decode(bytes: &[u8], namespace: u64, fp: Fingerprint) -> Result<StoredEntry, String> {
    if bytes.len() < MAGIC.len() + 4 + 8 + 8 + 8 + 8 {
        return Err("truncated".to_owned());
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let declared = u64::from_le_bytes(tail.try_into().unwrap());
    if fnv1a(body) != declared {
        return Err("checksum mismatch".to_owned());
    }
    let mut cur = Cursor {
        bytes: body,
        pos: 0,
    };
    if cur.take(MAGIC.len())? != MAGIC {
        return Err("bad magic".to_owned());
    }
    let version = cur.u32()?;
    if version != FORMAT_VERSION {
        return Err(format!(
            "format version {version}, expected {FORMAT_VERSION}"
        ));
    }
    let file_ns = cur.u64()?;
    if file_ns != namespace {
        return Err("namespace mismatch".to_owned());
    }
    let file_fp = cur.u64()?;
    if file_fp != fp.0 {
        return Err("fingerprint mismatch".to_owned());
    }
    let cost_ns = cur.u64()?;
    let ndeps = cur.u32()? as usize;
    let mut deps = Vec::with_capacity(ndeps.min(1024));
    for _ in 0..ndeps {
        deps.push(cur.str()?);
    }
    let ncols = cur.u32()? as usize;
    let mut cols = Vec::with_capacity(ncols.min(1024));
    for _ in 0..ncols {
        let qualifier = cur.str()?;
        let name = cur.str()?;
        let ty = type_from_tag(cur.u8()?).ok_or("unknown type tag")?;
        cols.push(Column::new(qualifier, name, ty));
    }
    let nrows = cur.u64()? as usize;
    let mut rows = Vec::with_capacity(nrows.min(4096));
    for _ in 0..nrows {
        let mut row = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            row.push(cur.value()?);
        }
        rows.push(row);
    }
    if cur.pos != body.len() {
        return Err("trailing bytes".to_owned());
    }
    Ok(StoredEntry {
        deps,
        table: Table::new(Scheme::new(cols), rows),
        cost_ns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(rows: usize, tag: &str) -> StoredEntry {
        let scheme = Scheme::new(vec![
            Column::new("T", "a", DataType::Str),
            Column::new("T", "n", DataType::Int),
        ]);
        let rows = (0..rows)
            .map(|i| vec![Value::str(format!("{tag}{i}")), Value::Int(i as i64)])
            .collect();
        StoredEntry {
            deps: vec!["R".into(), "S".into()],
            table: Table::new(scheme, rows),
            cost_ns: 987_654,
        }
    }

    fn all_types_entry() -> StoredEntry {
        let scheme = Scheme::new(vec![
            Column::new("T", "i", DataType::Int),
            Column::new("T", "f", DataType::Float),
            Column::new("T", "s", DataType::Str),
            Column::new("T", "b", DataType::Bool),
        ]);
        StoredEntry {
            deps: vec![],
            table: Table::new(
                scheme,
                vec![
                    vec![
                        Value::Int(-7),
                        Value::Float(2.5),
                        Value::str("x"),
                        Value::Bool(true),
                    ],
                    vec![Value::Null, Value::Null, Value::Null, Value::Bool(false)],
                ],
            ),
            cost_ns: 0,
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("clio-disk-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn encode_decode_round_trip_all_value_kinds() {
        let e = all_types_entry();
        let bytes = encode(7, Fingerprint(42), &e);
        let back = decode(&bytes, 7, Fingerprint(42)).expect("round trip");
        assert_eq!(back, e);
    }

    #[test]
    fn decode_rejects_defects() {
        let e = entry(2, "r");
        let good = encode(7, Fingerprint(42), &e);
        // truncation at every prefix length fails, never panics
        for n in 0..good.len() {
            assert!(decode(&good[..n], 7, Fingerprint(42)).is_err(), "len {n}");
        }
        // single-byte corruption is caught by the checksum
        let mut flipped = good.clone();
        flipped[10] ^= 0xff;
        assert!(decode(&flipped, 7, Fingerprint(42))
            .unwrap_err()
            .contains("checksum"));
        // wrong version (re-checksummed so the version check fires)
        let mut wrong_ver = good.clone();
        wrong_ver[4] = 99;
        let body_len = wrong_ver.len() - 8;
        let sum = fnv1a(&wrong_ver[..body_len]);
        wrong_ver[body_len..].copy_from_slice(&sum.to_le_bytes());
        assert!(decode(&wrong_ver, 7, Fingerprint(42))
            .unwrap_err()
            .contains("version"));
        // wrong namespace / fingerprint at lookup time
        assert!(decode(&good, 8, Fingerprint(42))
            .unwrap_err()
            .contains("namespace"));
        assert!(decode(&good, 7, Fingerprint(43))
            .unwrap_err()
            .contains("fingerprint"));
    }

    #[test]
    fn disk_store_round_trips_across_instances() {
        let dir = tmp_dir("roundtrip");
        let e = entry(3, "r");
        {
            let store = DiskStore::open(&dir, 7);
            assert!(!store.degraded());
            assert!(store.load(Fingerprint(1)).is_none());
            assert!(store.spill(Fingerprint(1), &e));
            assert!(!store.spill(Fingerprint(1), &e), "idempotent");
            let s = store.stats();
            assert_eq!((s.spills, s.load_errors), (1, 0));
            assert!(s.bytes > 0);
        }
        // a second instance (fresh process restart in miniature) sees it
        let store = DiskStore::open(&dir, 7);
        assert_eq!(store.load(Fingerprint(1)).expect("disk hit"), e);
        assert_eq!(store.stats().hits, 1);
        // but a different namespace does not
        let other = DiskStore::open(&dir, 8);
        assert!(other.load(Fingerprint(1)).is_none());
        assert_eq!(other.stats().load_errors, 0, "a miss, not an error");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_all_returns_namespace_entries_in_order() {
        let dir = tmp_dir("loadall");
        let store = DiskStore::open(&dir, 7);
        store.spill(Fingerprint(9), &entry(1, "c"));
        store.spill(Fingerprint(2), &entry(1, "a"));
        let other = DiskStore::open(&dir, 8);
        other.spill(Fingerprint(5), &entry(1, "x"));
        let fps: Vec<u64> = store.load_all().iter().map(|(fp, _)| fp.0).collect();
        assert_eq!(fps, vec![2, 9], "sorted, other namespace excluded");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_and_corrupt_files_degrade_to_misses() {
        let dir = tmp_dir("corrupt");
        let store = DiskStore::open(&dir, 7);
        store.spill(Fingerprint(1), &entry(2, "r"));
        let path = dir.join(format!("{:016x}-{:016x}.clc", 7, 1));
        let bytes = fs::read(&path).unwrap();
        // truncate
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(store.load(Fingerprint(1)).is_none());
        assert_eq!(store.stats().load_errors, 1);
        // corrupt one byte (restore length first)
        let mut flipped = bytes.clone();
        flipped[20] ^= 0x55;
        fs::write(&path, &flipped).unwrap();
        assert!(store.load(Fingerprint(1)).is_none());
        assert_eq!(store.stats().load_errors, 2);
        // future format version
        let mut future = bytes.clone();
        future[4] = 3;
        let body_len = future.len() - 8;
        let sum = fnv1a(&future[..body_len]);
        future[body_len..].copy_from_slice(&sum.to_le_bytes());
        fs::write(&path, &future).unwrap();
        assert!(store.load(Fingerprint(1)).is_none());
        assert_eq!(store.stats().load_errors, 3);
        // load_all tolerates the same file
        assert!(store.load_all().is_empty());
        assert_eq!(store.stats().load_errors, 4);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_one_files_degrade_to_misses() {
        // Reconstruct a version-1 file from the current encoding: drop
        // the cost_ns word (bytes 24..32), set the version field to 1,
        // and re-checksum — byte-for-byte what PR 5 wrote.
        let e = entry(2, "r");
        let good = encode(7, Fingerprint(1), &e);
        let mut v1: Vec<u8> = Vec::new();
        v1.extend_from_slice(&good[..24]);
        v1.extend_from_slice(&good[32..good.len() - 8]);
        v1[4] = 1;
        let sum = fnv1a(&v1);
        v1.extend_from_slice(&sum.to_le_bytes());
        let why = decode(&v1, 7, Fingerprint(1)).unwrap_err();
        assert!(why.contains("format version 1"), "got: {why}");
        // through the store it is one load error and a miss, and the
        // recompute path overwrites nothing (spill skips existing files)
        // until the caller clears it — cold but correct.
        let dir = tmp_dir("v1");
        let store = DiskStore::open(&dir, 7);
        let path = dir.join(format!("{:016x}-{:016x}.clc", 7, 1));
        fs::write(&path, &v1).unwrap();
        assert!(store.load(Fingerprint(1)).is_none());
        assert_eq!(store.stats().load_errors, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn cost_survives_the_disk_round_trip() {
        let dir = tmp_dir("cost");
        let store = DiskStore::open(&dir, 7);
        let e = entry(1, "r");
        assert!(store.spill(Fingerprint(5), &e));
        let back = store.load(Fingerprint(5)).expect("hit");
        assert_eq!(back.cost_ns, 987_654);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unusable_dir_degrades_to_inert_store() {
        // a file where the directory should be → create_dir_all fails
        let blocker =
            std::env::temp_dir().join(format!("clio-disk-test-{}-blocker", std::process::id()));
        fs::write(&blocker, b"not a directory").unwrap();
        let store = DiskStore::open(&blocker, 7);
        assert!(store.degraded());
        assert_eq!(store.stats().load_errors, 1);
        assert!(!store.spill(Fingerprint(1), &entry(1, "r")));
        assert!(store.load(Fingerprint(1)).is_none());
        assert!(store.load_all().is_empty());
        assert_eq!(store.stats().spills, 0);
        assert!(store.describe().contains("degraded"));
        let _ = fs::remove_file(&blocker);
    }

    #[test]
    fn corrupt_file_warnings_are_rate_limited() {
        let dir = tmp_dir("ratelimit");
        let store = DiskStore::open(&dir, 7);
        let flood = clio_obs::warn::WARN_LIMIT + 20;
        for i in 0..flood {
            store.spill(Fingerprint(i), &entry(1, "r"));
            let path = dir.join(format!("{:016x}-{:016x}.clc", 7u64, i));
            fs::write(&path, b"garbage").unwrap();
        }
        let (printed_before, suppressed_before) = clio_obs::warn_counts("cache.load");
        for i in 0..flood {
            assert!(store.load(Fingerprint(i)).is_none());
        }
        assert_eq!(store.stats().load_errors, flood);
        let (printed_after, suppressed_after) = clio_obs::warn_counts("cache.load");
        // Other parallel tests share the category, so assert deltas and
        // bounds rather than exact totals: every flood miss was tallied,
        // but at most WARN_LIMIT lines ever print.
        assert!(printed_after <= clio_obs::warn::WARN_LIMIT);
        assert!(
            (printed_after + suppressed_after) - (printed_before + suppressed_before) >= flood,
            "all {flood} corrupt loads must be tallied"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_tmp_files_left_behind() {
        let dir = tmp_dir("tmpfiles");
        let store = DiskStore::open(&dir, 7);
        store.spill(Fingerprint(1), &entry(1, "r"));
        store.spill(Fingerprint(2), &entry(1, "s"));
        let leftovers: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|n| n.starts_with(".tmp-"))
            .collect();
        assert!(leftovers.is_empty(), "stray tmp files: {leftovers:?}");
        let _ = fs::remove_dir_all(&dir);
    }
}
