//! Incremental evaluation support: a memoizing cache for engine result
//! tables, keyed by structural fingerprints with dependency-tracked
//! invalidation.
//!
//! The paper's Section 5.3 (continuous evolution of illustrations) is
//! built on the observation that a refinement step — adding a
//! correspondence, a filter, a walk — changes only part of the mapping
//! state, so most of what the previous state established can be reused.
//! This crate supplies the machinery: [`EvalCache`] stores result
//! [`clio_relational::table::Table`]s under [`Fingerprint`] keys,
//! tracks which base relations
//! each entry depends on, and drops exactly the dependent entries when a
//! relation's content version is bumped.
//!
//! The crate is deliberately generic: it knows nothing about query
//! graphs or mappings. `clio-core` computes the fingerprints (see
//! `clio_core::incremental` and `docs/incremental.md` for the scheme)
//! and decides what to cache; this crate provides deterministic hashing
//! ([`FingerprintBuilder`]), storage under a byte budget with a
//! pluggable [`EvictionPolicy`] (cost-aware by default), pluggable
//! persistence ([`CacheStore`], with [`DiskStore`] surviving process
//! restarts — see `docs/incremental.md`, *Persistence*), and
//! observability (the `cache.*` counters in [`clio_obs`]).

pub mod cache;
pub mod disk;
pub mod fingerprint;
pub mod store;

pub use cache::{
    table_bytes, CacheStats, EvalCache, EvictionPolicy, LookupTier, DEFAULT_CAPACITY_BYTES,
};
pub use disk::DiskStore;
pub use fingerprint::{Fingerprint, FingerprintBuilder};
pub use store::{database_digest, CacheStore, MemStore, StoreStats, StoredEntry};
