//! The memoizing evaluation cache.
//!
//! [`EvalCache`] maps [`Fingerprint`]s to result [`Table`]s. Three
//! mechanisms keep entries honest (see `docs/incremental.md`):
//!
//! * **Content versions** — every base relation has a monotonically
//!   increasing version, mixed into fingerprints by the caller. Editing
//!   a relation calls [`EvalCache::bump_version`], which both retires
//!   the old fingerprints (they can never be asked for again) and
//!   eagerly drops entries that declared the relation as a dependency.
//! * **The epoch** — a cache-wide version covering ambient evaluation
//!   state that is not per-relation (the function registry). Bumping it
//!   clears everything.
//! * **A byte budget with a pluggable eviction policy** — entries are
//!   charged an estimated byte size; inserting past the capacity evicts
//!   entries chosen by the active [`EvictionPolicy`]: plain
//!   least-recently-used, or (the default) a GreedyDual-style
//!   cost-aware priority that keeps expensive-to-recompute tables
//!   resident (see `docs/incremental.md`).
//!
//! Lookups and insertions mirror into the global `cache.*` counters of
//! [`clio_obs`] (when metrics are enabled) and into per-cache
//! [`CacheStats`] (always, for the `cache` shell command).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use clio_obs::metrics::{self, Counter};
use clio_relational::table::Table;
use clio_relational::value::Value;

use crate::fingerprint::Fingerprint;
use crate::store::{CacheStore, StoredEntry};

/// Default cache capacity: 64 MiB of estimated table bytes.
pub const DEFAULT_CAPACITY_BYTES: usize = 64 << 20;

/// How victims are chosen when resident bytes exceed the budget.
///
/// Both policies are *answer-invisible*: they only decide what stays
/// resident, never what a lookup returns (pinned by the Lru-vs-CostAware
/// byte-identity proptest in `tests/properties.rs`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// Evict the least-recently-used entry first, ignoring costs.
    Lru,
    /// GreedyDual-style cost-aware eviction (the default). Each entry
    /// carries a priority
    /// `H = clock + freq · cost_ns · SCALE / bytes`, recomputed on
    /// every hit (which also bumps `freq`). The victim is the minimum
    /// `H` (ties broken least-recently-used), and the clock inflates to
    /// the victim's priority so long-resident entries age out instead
    /// of squatting forever. Entries with no recorded cost degenerate
    /// to exact LRU order.
    #[default]
    CostAware,
}

impl EvictionPolicy {
    /// Parse a CLI/shell policy name (`lru` | `cost`).
    #[must_use]
    pub fn parse(name: &str) -> Option<EvictionPolicy> {
        match name {
            "lru" => Some(EvictionPolicy::Lru),
            "cost" => Some(EvictionPolicy::CostAware),
            _ => None,
        }
    }

    /// The CLI/shell name (`lru` | `cost`), inverse of
    /// [`EvictionPolicy::parse`].
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EvictionPolicy::Lru => "lru",
            EvictionPolicy::CostAware => "cost",
        }
    }

    fn from_u8(v: u8) -> EvictionPolicy {
        if v == 0 {
            EvictionPolicy::Lru
        } else {
            EvictionPolicy::CostAware
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            EvictionPolicy::Lru => 0,
            EvictionPolicy::CostAware => 1,
        }
    }
}

/// Fixed-point scale for the cost/size ratio in the GreedyDual
/// priority, so small ratios (cheap-but-large tables) still order
/// against each other instead of all truncating to zero.
const PRIORITY_SCALE: u64 = 1 << 10;

/// The GreedyDual priority `clock + freq · cost_ns · SCALE / bytes`
/// (saturating). Zero-cost entries collapse to `clock`, which makes
/// the cost-aware policy degrade to exact LRU via the recency
/// tie-break.
fn gd_priority(clock: u64, cost_ns: u64, bytes: usize, freq: u64) -> u64 {
    let value = cost_ns.saturating_mul(freq).saturating_mul(PRIORITY_SCALE) / (bytes.max(1) as u64);
    clock.saturating_add(value)
}

/// Estimate the resident size of a table: one `Value` slot per cell plus
/// string payloads. Good enough for budgeting; never used for
/// correctness.
#[must_use]
pub fn table_bytes(table: &Table) -> usize {
    let cell = std::mem::size_of::<Value>();
    let mut bytes = 0;
    for row in table.rows() {
        bytes += row.len() * cell;
        for v in row {
            if let Value::Str(s) = v {
                bytes += s.len();
            }
        }
    }
    bytes
}

/// Point-in-time statistics of one [`EvalCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to a computation.
    pub misses: u64,
    /// Entries dropped because a dependency changed.
    pub invalidations: u64,
    /// Entries dropped to stay under the byte budget.
    pub evictions: u64,
    /// The subset of `evictions` chosen by the cost-aware policy.
    pub cost_evictions: u64,
    /// Recompute nanoseconds avoided by hits (sum of the answering
    /// entries' recorded costs, memory and disk tiers alike).
    pub saved_ns: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Estimated bytes currently resident.
    pub bytes: usize,
}

/// Which tier answered an [`EvalCache::get_tiered`] lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupTier {
    /// The cache was disabled; nothing was counted.
    Disabled,
    /// Served from the in-memory table (counted as `cache.hits`).
    Memory,
    /// Served from the attached store (counted as `cache.disk_hits`
    /// inside the store), warming the memory tier on the way.
    Disk,
    /// A full miss (counted as `cache.misses`).
    Miss,
}

#[derive(Debug, Clone)]
struct Entry {
    table: Table,
    deps: Vec<String>,
    bytes: usize,
    last_used: u64,
    /// Measured recompute time, reported by the caller at insert
    /// (0 when unknown — e.g. legacy disk entries).
    cost_ns: u64,
    /// Reference count: starts at 1 on first admission (or resumes
    /// from ghost history on a re-insert) and bumps on every hit.
    freq: u64,
    /// GreedyDual priority, recomputed on every hit. Ignored under
    /// [`EvictionPolicy::Lru`].
    priority: u64,
}

/// History record for an entry that lost residency (evicted) or lost
/// admission (rejected): the frequency it had accumulated, and the tick
/// the record was written (for pruning the oldest once the history map
/// is full).
#[derive(Debug, Clone)]
struct Ghost {
    freq: u64,
    tick: u64,
}

/// Bound on the ghost-history map. Fingerprints embed dependency
/// versions, so ghosts of invalidated lineages are dead weight; the cap
/// keeps them from accumulating without a scan.
const MAX_GHOSTS: usize = 1024;

#[derive(Debug, Clone, Default)]
struct Inner {
    entries: HashMap<Fingerprint, Entry>,
    versions: HashMap<String, u64>,
    epoch: u64,
    bytes: usize,
    tick: u64,
    /// GreedyDual aging clock: inflates to each victim's priority so
    /// entries admitted later start "older" than long-dead residents.
    clock: u64,
    /// Ghost history: fingerprints that were evicted or rejected, with
    /// the frequency they had earned. A re-insert of the same
    /// fingerprint resumes at that frequency instead of restarting at
    /// one — recurring entries climb across edit rounds while one-shot
    /// fingerprints (whose deps changed) never benefit.
    ghosts: HashMap<Fingerprint, Ghost>,
    hits: u64,
    misses: u64,
    invalidations: u64,
    evictions: u64,
    cost_evictions: u64,
    saved_ns: u64,
    /// Optional second tier behind the memory tier. Shared (`Arc`) so a
    /// cloned session keeps spilling to — and loading from — the same
    /// backend.
    store: Option<Arc<dyn CacheStore>>,
}

/// A memoizing cache of evaluation results with dependency-tracked
/// invalidation. Interior-mutable: lookups, insertions, and version
/// bumps all take `&self`, so `&Session` methods like `target_preview`
/// can populate it.
pub struct EvalCache {
    enabled: AtomicBool,
    capacity: AtomicUsize,
    policy: AtomicU8,
    inner: Mutex<Inner>,
}

impl EvalCache {
    /// Lock the inner state, recovering from mutex poisoning. Every
    /// critical section leaves `Inner` consistent at each assignment
    /// (bytes are adjusted in the same statement group as the entry map),
    /// so a panic while the lock is held — e.g. a worker session dying
    /// mid-operation — must not wedge every other session sharing the
    /// process: we take the guard back with
    /// `unwrap_or_else(PoisonError::into_inner)`.
    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// An enabled cache with the default byte budget.
    #[must_use]
    pub fn new() -> EvalCache {
        EvalCache::with_capacity(DEFAULT_CAPACITY_BYTES)
    }

    /// An enabled cache with an explicit byte budget.
    #[must_use]
    pub fn with_capacity(capacity_bytes: usize) -> EvalCache {
        EvalCache {
            enabled: AtomicBool::new(true),
            capacity: AtomicUsize::new(capacity_bytes),
            policy: AtomicU8::new(EvictionPolicy::default().as_u8()),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// The active eviction policy.
    #[must_use]
    pub fn policy(&self) -> EvictionPolicy {
        EvictionPolicy::from_u8(self.policy.load(Ordering::Relaxed))
    }

    /// Switch the eviction policy at runtime (`cache policy <name>`).
    /// Resident entries, statistics, and recorded costs are kept; only
    /// future victim selection changes.
    pub fn set_policy(&self, policy: EvictionPolicy) {
        self.policy.store(policy.as_u8(), Ordering::Relaxed);
    }

    /// Whether lookups and insertions are active.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turn the cache on or off. Disabling keeps resident entries and
    /// keeps processing version bumps, so re-enabling is always safe.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// The byte budget.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity.load(Ordering::Relaxed)
    }

    /// Change the byte budget at runtime (`cache limit <bytes>`),
    /// evicting policy-chosen victims until resident bytes fit.
    pub fn set_capacity(&self, capacity_bytes: usize) {
        self.capacity.store(capacity_bytes, Ordering::Relaxed);
        let mut inner = self.lock();
        Self::evict_to(&mut inner, capacity_bytes, self.policy());
    }

    /// Attach (or detach, with `None`) a second-tier backend. Lookups
    /// that miss in memory consult the store; eligible insertions spill
    /// copies to it.
    pub fn set_store(&self, store: Option<Arc<dyn CacheStore>>) {
        self.lock().store = store;
    }

    /// The attached second-tier backend, if any.
    #[must_use]
    pub fn store(&self) -> Option<Arc<dyn CacheStore>> {
        self.lock().store.clone()
    }

    /// Evict until resident bytes fit `capacity`. A zero budget means
    /// *nothing* stays resident — even zero-byte tables, which would
    /// otherwise "fit" — so `set_capacity(0)` is a guaranteed flush.
    /// Victim selection is deterministic under both policies:
    /// `last_used` ticks are unique, so the `(priority, last_used)` key
    /// never ties and `HashMap` iteration order cannot leak into which
    /// entry dies.
    fn evict_to(inner: &mut Inner, capacity: usize, policy: EvictionPolicy) {
        while inner.bytes > capacity || (capacity == 0 && !inner.entries.is_empty()) {
            let victim = match policy {
                EvictionPolicy::Lru => inner
                    .entries
                    .iter()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(&fp, _)| fp),
                EvictionPolicy::CostAware => inner
                    .entries
                    .iter()
                    .min_by_key(|(_, e)| (e.priority, e.last_used))
                    .map(|(&fp, _)| fp),
            };
            let Some(victim) = victim else { break };
            if let Some(e) = inner.entries.remove(&victim) {
                inner.bytes -= e.bytes;
                inner.evictions += 1;
                metrics::incr(Counter::CacheEvictions);
                Self::remember_ghost(inner, victim, e.freq);
                if policy == EvictionPolicy::CostAware {
                    // Age the cache: everything admitted from now on
                    // starts at least as "warm" as the entry that just
                    // lost, which is what lets stale expensive entries
                    // eventually drain.
                    inner.clock = inner.clock.max(e.priority);
                    inner.cost_evictions += 1;
                    metrics::incr(Counter::CacheCostEvictions);
                }
            }
        }
    }

    /// Record history for a fingerprint that just lost residency or
    /// admission, so a later re-insert of the *same* fingerprint can
    /// resume its accumulated frequency. Pruning the oldest record once
    /// the map is full is deterministic: ties on `tick` (several losses
    /// inside one operation) break on the fingerprint value.
    fn remember_ghost(inner: &mut Inner, fp: Fingerprint, freq: u64) {
        let tick = inner.tick;
        inner.ghosts.insert(fp, Ghost { freq, tick });
        if inner.ghosts.len() > MAX_GHOSTS {
            let oldest = inner
                .ghosts
                .iter()
                .min_by_key(|(fp, g)| (g.tick, fp.0))
                .map(|(&fp, _)| fp);
            if let Some(oldest) = oldest {
                inner.ghosts.remove(&oldest);
            }
        }
    }

    /// GreedyDual admission control for the cost-aware policy: may an
    /// entry of `bytes` at `cost_ns` (resuming at `freq` if its
    /// fingerprint has ghost history) displace the victims it needs?
    /// Walks the hypothetical eviction order without removing anything;
    /// the answer is no as soon as a required victim strictly outranks
    /// the candidate — evicting a proven earner for an unproven
    /// newcomer is the churn that blind LRU suffers under pressure.
    /// A rejection is the candidate being its own (immediate) victim,
    /// so the clock still inflates to the candidate's priority: a
    /// workload whose inserts keep losing raises the bar each time and
    /// eventually outbids residents that stopped earning hits, so
    /// nothing can squat forever.
    fn admission_beats_victims(
        inner: &mut Inner,
        capacity: usize,
        bytes: usize,
        cost_ns: u64,
        freq: u64,
    ) -> bool {
        let need = (inner.bytes + bytes).saturating_sub(capacity);
        if need == 0 {
            return true;
        }
        let candidate = gd_priority(inner.clock, cost_ns, bytes, freq);
        let mut ranked: Vec<(u64, u64, usize)> = inner
            .entries
            .values()
            .map(|e| (e.priority, e.last_used, e.bytes))
            .collect();
        ranked.sort_unstable();
        let mut freed = 0usize;
        for (priority, _, victim_bytes) in ranked {
            if freed >= need {
                break;
            }
            if priority > candidate {
                inner.clock = inner.clock.max(candidate);
                return false;
            }
            freed += victim_bytes;
        }
        true
    }

    /// Is an entry with these dependencies in the pristine state that
    /// makes its fingerprint reproducible by a fresh process — epoch
    /// zero and every declared dependency still at content version
    /// zero? Only such entries are worth spilling: post-edit
    /// fingerprints can never be requested across a restart.
    fn spill_eligible(inner: &Inner, deps: &[String]) -> bool {
        inner.epoch == 0
            && deps
                .iter()
                .all(|d| inner.versions.get(d).copied().unwrap_or(0) == 0)
    }

    /// Current content version of a base relation (0 until first bump).
    #[must_use]
    pub fn version(&self, relation: &str) -> u64 {
        self.lock().versions.get(relation).copied().unwrap_or(0)
    }

    /// The cache-wide epoch covering non-relation evaluation state.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.lock().epoch
    }

    /// Record a content change to `relation`: bump its version and drop
    /// every entry that declared it as a dependency. Processed even
    /// while disabled, so stale entries cannot survive a disable/edit/
    /// enable sequence.
    pub fn bump_version(&self, relation: &str) {
        let mut inner = self.lock();
        *inner.versions.entry(relation.to_owned()).or_insert(0) += 1;
        let stale: Vec<Fingerprint> = inner
            .entries
            .iter()
            .filter(|(_, e)| e.deps.iter().any(|d| d == relation))
            .map(|(&fp, _)| fp)
            .collect();
        let dropped = stale.len() as u64;
        for fp in stale {
            if let Some(e) = inner.entries.remove(&fp) {
                inner.bytes -= e.bytes;
            }
            // the fingerprint embeds the old version — it can never be
            // requested again, so its history is dead too
            inner.ghosts.remove(&fp);
        }
        inner.invalidations += dropped;
        metrics::add(Counter::CacheInvalidations, dropped);
    }

    /// Record a change to ambient evaluation state (e.g. the function
    /// registry): bump the epoch and drop everything.
    pub fn bump_epoch(&self) {
        let mut inner = self.lock();
        inner.epoch += 1;
        let dropped = inner.entries.len() as u64;
        inner.entries.clear();
        inner.ghosts.clear();
        inner.bytes = 0;
        inner.invalidations += dropped;
        metrics::add(Counter::CacheInvalidations, dropped);
    }

    /// Look up a result. A memory hit counts `cache.hits`; a lookup
    /// answered by the attached store counts `cache.disk_hits` (inside
    /// the store) and warms the memory tier; only a full miss counts
    /// `cache.misses` — so `hits + disk_hits + misses` equals lookups.
    /// Returns `None` without counting anything while disabled.
    #[must_use]
    pub fn get(&self, fp: Fingerprint) -> Option<Table> {
        self.get_tiered(fp).0
    }

    /// [`get`](Self::get), also reporting which tier answered — the
    /// timing-telemetry hook that lets callers record distinct latency
    /// histograms for memory hits, store loads, and cold misses.
    /// Counter semantics are identical to `get`.
    #[must_use]
    pub fn get_tiered(&self, fp: Fingerprint) -> (Option<Table>, LookupTier) {
        if !self.enabled() {
            return (None, LookupTier::Disabled);
        }
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let clock = inner.clock;
        if let Some(e) = inner.entries.get_mut(&fp) {
            e.last_used = tick;
            e.freq = e.freq.saturating_add(1);
            e.priority = gd_priority(clock, e.cost_ns, e.bytes, e.freq);
            let table = e.table.clone();
            let saved = e.cost_ns;
            inner.hits += 1;
            inner.saved_ns = inner.saved_ns.saturating_add(saved);
            metrics::incr(Counter::CacheHits);
            metrics::add(Counter::CacheSavedNs, saved);
            return (Some(table), LookupTier::Memory);
        }
        // Memory miss: consult the second tier with the lock released
        // (store loads may do I/O and must not serialize other sessions).
        let store = inner.store.clone();
        drop(inner);
        if let Some(store) = store {
            if let Some(entry) = store.load(fp) {
                self.admit(fp, entry.deps, &entry.table, entry.cost_ns);
                let mut inner = self.lock();
                inner.saved_ns = inner.saved_ns.saturating_add(entry.cost_ns);
                drop(inner);
                metrics::add(Counter::CacheSavedNs, entry.cost_ns);
                return (Some(entry.table), LookupTier::Disk);
            }
        }
        let mut inner = self.lock();
        inner.misses += 1;
        metrics::incr(Counter::CacheMisses);
        (None, LookupTier::Miss)
    }

    /// Non-promoting lookup: a copy of the resident table, or `None`
    /// (also while disabled). Touches no recency tick, frequency,
    /// priority, or counter, and never consults the attached store — so
    /// *inspecting* the cache (the `cache` shell command, the
    /// warmth-guided scheduler's pre-probe) cannot change what gets
    /// evicted next.
    #[must_use]
    pub fn peek(&self, fp: Fingerprint) -> Option<Table> {
        if !self.enabled() {
            return None;
        }
        self.lock().entries.get(&fp).map(|e| e.table.clone())
    }

    /// Estimate the recompute cost of a not-yet-resident entry from
    /// sibling history: the mean recorded `cost_ns` of resident entries
    /// sharing at least one declared dependency. `None` when no sibling
    /// carries a cost (then callers fall back to row-count heuristics).
    #[must_use]
    pub fn estimate_cost(&self, deps: &[String]) -> Option<u64> {
        let inner = self.lock();
        let (mut sum, mut n) = (0u128, 0u64);
        for e in inner.entries.values() {
            if e.cost_ns > 0 && e.deps.iter().any(|d| deps.contains(d)) {
                sum += u128::from(e.cost_ns);
                n += 1;
            }
        }
        (n > 0).then(|| u64::try_from(sum / u128::from(n)).unwrap_or(u64::MAX))
    }

    /// Store a result under `fp`, declaring the base relations it was
    /// computed from. Equivalent to [`EvalCache::insert_costed`] with an
    /// unknown (zero) recompute cost.
    pub fn insert(&self, fp: Fingerprint, deps: Vec<String>, table: &Table) {
        self.insert_costed(fp, deps, table, 0);
    }

    /// Store a result under `fp` together with its measured recompute
    /// time, which feeds the cost-aware eviction priority and the
    /// warmth-guided scheduler's estimates. No-op while disabled, when
    /// the entry already exists, or when the table alone exceeds the
    /// whole budget. Evicts policy-chosen victims to stay under the
    /// budget, and spills a copy (cost included) to the attached store
    /// when the entry is eligible (see [`EvalCache::spill_all`] for the
    /// eligibility rule).
    pub fn insert_costed(&self, fp: Fingerprint, deps: Vec<String>, table: &Table, cost_ns: u64) {
        if !self.enabled() {
            return;
        }
        let spill = self.admit(fp, deps.clone(), table, cost_ns);
        if let Some(store) = spill {
            store.spill(
                fp,
                &StoredEntry {
                    deps,
                    table: table.clone(),
                    cost_ns,
                },
            );
        }
    }

    /// Insert into the memory tier only. Returns the store to spill to
    /// when the entry was admitted fresh and is spill-eligible (the
    /// actual spill happens outside the lock).
    fn admit(
        &self,
        fp: Fingerprint,
        deps: Vec<String>,
        table: &Table,
        cost_ns: u64,
    ) -> Option<Arc<dyn CacheStore>> {
        let capacity = self.capacity();
        let bytes = table_bytes(table);
        if capacity == 0 || bytes > capacity {
            return None;
        }
        let mut inner = self.lock();
        if inner.entries.contains_key(&fp) {
            return None;
        }
        let policy = self.policy();
        // A re-insert of a previously seen fingerprint resumes its
        // accumulated frequency; the insert itself is a reference, so
        // the count also advances on every (re)attempt. This is what
        // separates recurring entries (same fingerprint across edit
        // rounds) from one-shot aggregates whose fingerprints die with
        // every dependency bump and therefore always compete at one.
        let freq = inner.ghosts.get(&fp).map_or(1, |g| g.freq + 1);
        if policy == EvictionPolicy::CostAware
            && !Self::admission_beats_victims(&mut inner, capacity, bytes, cost_ns, freq)
        {
            Self::remember_ghost(&mut inner, fp, freq);
            return None;
        }
        inner.ghosts.remove(&fp);
        Self::evict_to(&mut inner, capacity.saturating_sub(bytes), policy);
        inner.tick += 1;
        let last_used = inner.tick;
        let priority = gd_priority(inner.clock, cost_ns, bytes, freq);
        let spill_to = if Self::spill_eligible(&inner, &deps) {
            inner.store.clone()
        } else {
            None
        };
        inner.entries.insert(
            fp,
            Entry {
                table: table.clone(),
                deps,
                bytes,
                last_used,
                cost_ns,
                freq,
                priority,
            },
        );
        inner.bytes += bytes;
        metrics::add(Counter::CacheBytes, bytes as u64);
        spill_to
    }

    /// Spill every spill-eligible resident entry to the attached store
    /// (`cache save`). An entry is eligible when the cache epoch is
    /// zero and all its declared dependencies are still at content
    /// version zero — exactly the entries whose fingerprints a fresh
    /// process over the same source will reproduce. Returns the number
    /// of entries newly written.
    pub fn spill_all(&self) -> usize {
        let Some(store) = self.store() else {
            return 0;
        };
        self.spill_to(store.as_ref())
    }

    /// Spill every spill-eligible resident entry to an explicit store
    /// (`cache save <dir>`), which need not be the attached one. Same
    /// eligibility rule as [`EvalCache::spill_all`]; returns the number
    /// of entries newly written.
    pub fn spill_to(&self, store: &dyn CacheStore) -> usize {
        let inner = self.lock();
        let eligible: Vec<(Fingerprint, StoredEntry)> = inner
            .entries
            .iter()
            .filter(|(_, e)| Self::spill_eligible(&inner, &e.deps))
            .map(|(&fp, e)| {
                (
                    fp,
                    StoredEntry {
                        deps: e.deps.clone(),
                        table: e.table.clone(),
                        cost_ns: e.cost_ns,
                    },
                )
            })
            .collect();
        drop(inner);
        eligible
            .into_iter()
            .filter(|(fp, entry)| store.spill(*fp, entry))
            .count()
    }

    /// Pre-warm the memory tier with every entry the attached store
    /// holds (`cache load`). Entries are admitted only while the cache
    /// is still in the pristine state their fingerprints were minted in
    /// (epoch zero, dependency versions zero); anything else is skipped
    /// — a post-edit session can never ask for those fingerprints.
    /// Returns the number of entries admitted.
    pub fn preload(&self) -> usize {
        let Some(store) = self.store() else {
            return 0;
        };
        self.preload_from(store.as_ref())
    }

    /// Pre-warm the memory tier from an explicit store (`cache load
    /// \<dir\>`), which need not be the attached one. Same admission rule
    /// as [`EvalCache::preload`]; returns the number of entries
    /// admitted.
    pub fn preload_from(&self, store: &dyn CacheStore) -> usize {
        if !self.enabled() {
            return 0;
        }
        let mut admitted = 0;
        for (fp, entry) in store.load_all() {
            let ok = {
                let inner = self.lock();
                !inner.entries.contains_key(&fp) && Self::spill_eligible(&inner, &entry.deps)
            };
            if ok {
                self.admit(fp, entry.deps, &entry.table, entry.cost_ns);
                admitted += 1;
            }
        }
        admitted
    }

    /// Current statistics (for the `cache` shell command and tests).
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let inner = self.lock();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            invalidations: inner.invalidations,
            evictions: inner.evictions,
            cost_evictions: inner.cost_evictions,
            saved_ns: inner.saved_ns,
            entries: inner.entries.len(),
            bytes: inner.bytes,
        }
    }

    /// Per-entry residency ledger — `(deps, bytes, cost_ns, freq,
    /// priority)` per resident entry, unordered. Diagnostic surface for
    /// benchmarks and tests that need to see *why* the policy kept or
    /// dropped an entry; not part of the stable API.
    #[doc(hidden)]
    #[must_use]
    pub fn debug_entries(&self) -> Vec<(Vec<String>, usize, u64, u64, u64)> {
        self.lock()
            .entries
            .values()
            .map(|e| (e.deps.clone(), e.bytes, e.cost_ns, e.freq, e.priority))
            .collect()
    }

    /// Drop every resident entry (statistics and versions survive).
    /// Used by cold-path benchmarks.
    pub fn clear(&self) {
        let mut inner = self.lock();
        inner.entries.clear();
        inner.ghosts.clear();
        inner.bytes = 0;
    }
}

impl Default for EvalCache {
    fn default() -> EvalCache {
        EvalCache::new()
    }
}

// Session derives Clone; a cloned session gets an independent cache with
// the same resident entries, versions, and statistics. The attached
// store (if any) is shared: both caches keep spilling to the same
// backend.
impl Clone for EvalCache {
    fn clone(&self) -> EvalCache {
        EvalCache {
            enabled: AtomicBool::new(self.enabled()),
            capacity: AtomicUsize::new(self.capacity()),
            policy: AtomicU8::new(self.policy().as_u8()),
            inner: Mutex::new(self.lock().clone()),
        }
    }
}

impl std::fmt::Debug for EvalCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("EvalCache")
            .field("enabled", &self.enabled())
            .field("capacity", &self.capacity())
            .field("policy", &self.policy())
            .field("stats", &stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clio_relational::schema::{Column, Scheme};
    use clio_relational::value::{DataType, Value};

    fn table(rows: usize, tag: &str) -> Table {
        let scheme = Scheme::new(vec![Column::new("T", "a", DataType::Str)]);
        let rows = (0..rows)
            .map(|i| vec![Value::str(format!("{tag}{i}"))])
            .collect();
        Table::new(scheme, rows)
    }

    fn fp(n: u64) -> Fingerprint {
        Fingerprint(n)
    }

    #[test]
    fn miss_then_insert_then_hit() {
        let cache = EvalCache::new();
        assert!(cache.get(fp(1)).is_none());
        cache.insert(fp(1), vec!["R".into()], &table(3, "r"));
        let got = cache.get(fp(1)).expect("hit");
        assert_eq!(got.len(), 3);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert_eq!(s.bytes, table_bytes(&table(3, "r")));
    }

    #[test]
    fn get_tiered_reports_the_answering_tier() {
        let cache = EvalCache::new();
        cache.set_enabled(false);
        assert_eq!(cache.get_tiered(fp(1)), (None, LookupTier::Disabled));
        cache.set_enabled(true);
        assert_eq!(cache.get_tiered(fp(1)), (None, LookupTier::Miss));
        cache.insert(fp(1), vec!["R".into()], &table(2, "r"));
        let (hit, tier) = cache.get_tiered(fp(1));
        assert_eq!(hit.map(|t| t.len()), Some(2));
        assert_eq!(tier, LookupTier::Memory);
        // spill to a store, drop memory, and the store answers
        let store = Arc::new(crate::store::MemStore::new());
        cache.set_store(Some(store));
        cache.insert(fp(2), vec![], &table(1, "s"));
        cache.clear();
        let (from_disk, tier) = cache.get_tiered(fp(2));
        assert!(from_disk.is_some());
        assert_eq!(tier, LookupTier::Disk);
        // the disk hit warmed memory
        assert_eq!(cache.get_tiered(fp(2)).1, LookupTier::Memory);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (2, 1));
    }

    #[test]
    fn bump_version_drops_only_dependents() {
        let cache = EvalCache::new();
        cache.insert(fp(1), vec!["R".into()], &table(1, "r"));
        cache.insert(fp(2), vec!["S".into()], &table(1, "s"));
        cache.insert(fp(3), vec!["R".into(), "S".into()], &table(1, "b"));
        assert_eq!(cache.version("R"), 0);
        cache.bump_version("R");
        assert_eq!(cache.version("R"), 1);
        assert!(cache.get(fp(1)).is_none());
        assert!(cache.get(fp(3)).is_none());
        assert!(cache.get(fp(2)).is_some());
        assert_eq!(cache.stats().invalidations, 2);
    }

    #[test]
    fn bump_epoch_clears_everything() {
        let cache = EvalCache::new();
        cache.insert(fp(1), vec!["R".into()], &table(1, "r"));
        cache.insert(fp(2), vec!["S".into()], &table(1, "s"));
        let epoch = cache.epoch();
        cache.bump_epoch();
        assert_eq!(cache.epoch(), epoch + 1);
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.stats().invalidations, 2);
    }

    #[test]
    fn lru_eviction_respects_budget_and_recency() {
        let one = table_bytes(&table(1, "x"));
        let cache = EvalCache::with_capacity(2 * one);
        cache.insert(fp(1), vec![], &table(1, "a"));
        cache.insert(fp(2), vec![], &table(1, "b"));
        // touch 1 so 2 becomes the LRU victim
        assert!(cache.get(fp(1)).is_some());
        cache.insert(fp(3), vec![], &table(1, "c"));
        assert!(cache.get(fp(2)).is_none(), "LRU entry should be evicted");
        assert!(cache.get(fp(1)).is_some());
        assert!(cache.get(fp(3)).is_some());
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert!(s.bytes <= 2 * one);
    }

    #[test]
    fn oversized_tables_are_not_cached() {
        let cache = EvalCache::with_capacity(1);
        cache.insert(fp(1), vec![], &table(10, "big"));
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn disabled_cache_neither_stores_nor_counts() {
        let cache = EvalCache::new();
        cache.set_enabled(false);
        assert!(cache.get(fp(1)).is_none());
        cache.insert(fp(1), vec![], &table(1, "r"));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (0, 0, 0));
    }

    #[test]
    fn bump_version_works_while_disabled() {
        let cache = EvalCache::new();
        cache.insert(fp(1), vec!["R".into()], &table(1, "r"));
        cache.set_enabled(false);
        cache.bump_version("R");
        cache.set_enabled(true);
        assert!(cache.get(fp(1)).is_none(), "stale entry must not survive");
        assert_eq!(cache.version("R"), 1);
    }

    #[test]
    fn poisoned_mutex_recovers_and_cache_stays_usable() {
        let cache = EvalCache::new();
        cache.insert(fp(1), vec!["R".into()], &table(1, "r"));
        // Poison the inner mutex: panic while holding the guard, the way
        // a dying worker session would.
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = cache.inner.lock().unwrap();
            panic!("worker died mid-operation");
        }));
        assert!(caught.is_err());
        assert!(cache.inner.is_poisoned(), "mutex should be poisoned");
        // Every operation must still work on the recovered state.
        assert_eq!(cache.get(fp(1)).expect("hit survives poisoning").len(), 1);
        cache.insert(fp(2), vec!["S".into()], &table(2, "s"));
        assert_eq!(cache.get(fp(2)).expect("insert after poisoning").len(), 2);
        cache.bump_version("R");
        assert!(cache.get(fp(1)).is_none(), "invalidation after poisoning");
        assert_eq!(cache.version("R"), 1);
        cache.bump_epoch();
        assert_eq!(cache.stats().entries, 0);
        let copy = cache.clone();
        assert_eq!(copy.stats().entries, 0);
        cache.clear();
    }

    #[test]
    fn set_capacity_evicts_down_to_new_budget() {
        let one = table_bytes(&table(1, "x"));
        let cache = EvalCache::with_capacity(4 * one);
        cache.insert(fp(1), vec![], &table(1, "a"));
        cache.insert(fp(2), vec![], &table(1, "b"));
        cache.insert(fp(3), vec![], &table(1, "c"));
        assert!(cache.get(fp(1)).is_some(), "refresh 1 so 2 is the victim");
        cache.set_capacity(2 * one);
        assert_eq!(cache.capacity(), 2 * one);
        let s = cache.stats();
        assert_eq!(s.entries, 2);
        assert!(s.bytes <= 2 * one);
        assert!(cache.get(fp(2)).is_none(), "LRU entry evicted by shrink");
        assert!(cache.get(fp(1)).is_some());
    }

    #[test]
    fn insert_spills_to_store_and_miss_is_served_from_it() {
        use crate::store::{CacheStore, MemStore};
        let store = std::sync::Arc::new(MemStore::new());
        let cache = EvalCache::new();
        cache.set_store(Some(store.clone()));
        cache.insert(fp(1), vec!["R".into()], &table(2, "r"));
        assert_eq!(store.len(), 1, "eligible insert spills");
        // a second cache sharing the store serves the memory miss from it
        let warm = EvalCache::new();
        warm.set_store(Some(store.clone()));
        let got = warm.get(fp(1)).expect("disk hit");
        assert_eq!(got.len(), 2);
        let s = warm.stats();
        assert_eq!((s.hits, s.misses), (0, 0), "store hit is neither");
        assert_eq!(store.stats().hits, 1);
        // the entry is now memory-resident: a second lookup is a plain hit
        assert!(warm.get(fp(1)).is_some());
        assert_eq!(warm.stats().hits, 1);
        // and a store-backed entry still honors invalidation
        warm.bump_version("R");
        assert_eq!(warm.stats().entries, 0);
    }

    #[test]
    fn post_edit_entries_are_not_spilled() {
        use crate::store::MemStore;
        let store = std::sync::Arc::new(MemStore::new());
        let cache = EvalCache::new();
        cache.set_store(Some(store.clone()));
        cache.bump_version("R");
        cache.insert(fp(1), vec!["R".into()], &table(1, "r"));
        assert_eq!(store.len(), 0, "version-1 dep blocks the spill");
        cache.insert(fp(2), vec!["S".into()], &table(1, "s"));
        assert_eq!(store.len(), 1, "untouched dep still spills");
        cache.bump_epoch();
        cache.insert(fp(3), vec!["T".into()], &table(1, "t"));
        assert_eq!(store.len(), 1, "non-zero epoch blocks every spill");
        assert_eq!(cache.spill_all(), 0, "nothing eligible after the bumps");
    }

    #[test]
    fn spill_all_and_preload_round_trip() {
        use crate::store::MemStore;
        let store = std::sync::Arc::new(MemStore::new());
        // build a warm cache with no store attached, then save explicitly
        let cache = EvalCache::new();
        cache.insert(fp(1), vec!["R".into()], &table(1, "r"));
        cache.insert(fp(2), vec!["S".into()], &table(2, "s"));
        assert_eq!(cache.spill_all(), 0, "no store attached");
        cache.set_store(Some(store.clone()));
        assert_eq!(cache.spill_all(), 2);
        assert_eq!(cache.spill_all(), 0, "idempotent");
        // preload into a fresh cache
        let warm = EvalCache::new();
        warm.set_store(Some(store.clone()));
        assert_eq!(warm.preload(), 2);
        assert_eq!(warm.stats().entries, 2);
        assert_eq!(warm.preload(), 0, "already resident");
        // preload after an edit skips the now-stale entry
        let edited = EvalCache::new();
        edited.set_store(Some(store));
        edited.bump_version("R");
        assert_eq!(edited.preload(), 1, "only the S-dependent entry");
    }

    #[test]
    fn disabled_cache_ignores_the_store() {
        use crate::store::MemStore;
        let store = std::sync::Arc::new(MemStore::new());
        store.spill(
            fp(1),
            &crate::store::StoredEntry {
                deps: vec![],
                table: table(1, "r"),
                cost_ns: 0,
            },
        );
        let cache = EvalCache::new();
        cache.set_store(Some(store.clone()));
        cache.set_enabled(false);
        assert!(cache.get(fp(1)).is_none());
        assert_eq!(store.stats().hits, 0, "store not consulted while off");
        assert_eq!(cache.preload(), 0);
    }

    #[test]
    fn clone_is_independent() {
        let cache = EvalCache::new();
        cache.insert(fp(1), vec![], &table(1, "r"));
        let copy = cache.clone();
        cache.clear();
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(copy.stats().entries, 1);
    }

    #[test]
    fn clone_preserves_policy() {
        let cache = EvalCache::new();
        assert_eq!(cache.policy(), EvictionPolicy::CostAware, "default");
        cache.set_policy(EvictionPolicy::Lru);
        assert_eq!(cache.clone().policy(), EvictionPolicy::Lru);
    }

    #[test]
    fn policy_names_round_trip() {
        for p in [EvictionPolicy::Lru, EvictionPolicy::CostAware] {
            assert_eq!(EvictionPolicy::parse(p.name()), Some(p));
        }
        assert_eq!(EvictionPolicy::parse("mru"), None);
    }

    #[test]
    fn peek_does_not_promote_or_count() {
        let one = table_bytes(&table(1, "x"));
        let cache = EvalCache::with_capacity(2 * one);
        cache.insert(fp(1), vec![], &table(1, "a"));
        cache.insert(fp(2), vec![], &table(1, "b"));
        // peek 1 repeatedly: were this a promoting get, 1 would become
        // most-recent (and most-frequent) and 2 the next victim.
        for _ in 0..5 {
            assert_eq!(cache.peek(fp(1)).map(|t| t.len()), Some(1));
        }
        cache.insert(fp(3), vec![], &table(1, "c"));
        assert!(cache.peek(fp(1)).is_none(), "peek must not refresh recency");
        assert!(cache.peek(fp(2)).is_some());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (0, 0), "peek counts nothing");
    }

    #[test]
    fn peek_never_consults_the_store() {
        use crate::store::MemStore;
        let store = std::sync::Arc::new(MemStore::new());
        store.spill(
            fp(1),
            &crate::store::StoredEntry {
                deps: vec![],
                table: table(1, "r"),
                cost_ns: 0,
            },
        );
        let cache = EvalCache::new();
        cache.set_store(Some(store.clone()));
        assert!(cache.peek(fp(1)).is_none(), "peek is memory-tier only");
        assert_eq!(store.stats().hits, 0);
        cache.set_enabled(false);
        assert!(cache.peek(fp(1)).is_none());
    }

    #[test]
    fn cost_aware_eviction_keeps_the_expensive_entry() {
        let one = table_bytes(&table(1, "x"));
        let cache = EvalCache::with_capacity(2 * one);
        assert_eq!(cache.policy(), EvictionPolicy::CostAware);
        // 1 is expensive and *older*; 2 is free and more recent. LRU
        // would kill 1; the cost-aware policy kills 2.
        cache.insert_costed(fp(1), vec![], &table(1, "a"), 1_000_000);
        cache.insert(fp(2), vec![], &table(1, "b"));
        cache.insert_costed(fp(3), vec![], &table(1, "c"), 500_000);
        assert!(cache.peek(fp(1)).is_some(), "expensive entry survives");
        assert!(cache.peek(fp(2)).is_none(), "cheap entry is the victim");
        let s = cache.stats();
        assert_eq!((s.evictions, s.cost_evictions), (1, 1));
    }

    #[test]
    fn cost_aware_degrades_to_lru_without_costs() {
        // With every cost at zero, priorities are all `clock` and the
        // recency tie-break reproduces exact LRU order.
        let one = table_bytes(&table(1, "x"));
        let cache = EvalCache::with_capacity(2 * one);
        cache.insert(fp(1), vec![], &table(1, "a"));
        cache.insert(fp(2), vec![], &table(1, "b"));
        assert!(cache.get(fp(1)).is_some());
        cache.insert(fp(3), vec![], &table(1, "c"));
        assert!(cache.peek(fp(2)).is_none(), "LRU victim");
        assert!(cache.peek(fp(1)).is_some());
        let s = cache.stats();
        assert_eq!((s.evictions, s.cost_evictions), (1, 1));
    }

    #[test]
    fn lru_policy_ignores_costs() {
        let one = table_bytes(&table(1, "x"));
        let cache = EvalCache::with_capacity(2 * one);
        cache.set_policy(EvictionPolicy::Lru);
        cache.insert_costed(fp(1), vec![], &table(1, "a"), u64::MAX);
        cache.insert(fp(2), vec![], &table(1, "b"));
        cache.insert(fp(3), vec![], &table(1, "c"));
        assert!(cache.peek(fp(1)).is_none(), "oldest dies, cost ignored");
        let s = cache.stats();
        assert_eq!((s.evictions, s.cost_evictions), (1, 0));
    }

    #[test]
    fn clock_inflation_lets_stale_expensive_entries_drain() {
        let one = table_bytes(&table(1, "x"));
        let cache = EvalCache::with_capacity(one);
        cache.insert_costed(fp(1), vec![], &table(1, "a"), 1_000);
        // Each new insert evicts the resident entry and inflates the
        // clock past its priority, so the *next* equally-expensive
        // entry is admitted warmer and the old one cannot squat.
        cache.insert_costed(fp(2), vec![], &table(1, "b"), 1_000);
        assert!(cache.peek(fp(1)).is_none());
        assert!(cache.peek(fp(2)).is_some());
        cache.insert_costed(fp(3), vec![], &table(1, "c"), 1_000);
        assert!(cache.peek(fp(2)).is_none());
        assert!(cache.peek(fp(3)).is_some());
        assert_eq!(cache.stats().evictions, 2);
    }

    #[test]
    fn hits_accumulate_saved_ns_and_frequency_protects_entries() {
        let one = table_bytes(&table(1, "x"));
        let cache = EvalCache::with_capacity(2 * one);
        cache.insert_costed(fp(1), vec![], &table(1, "a"), 300);
        cache.insert_costed(fp(2), vec![], &table(1, "b"), 400);
        assert!(cache.get(fp(1)).is_some());
        assert!(cache.get(fp(1)).is_some());
        assert!(cache.get(fp(2)).is_some());
        assert_eq!(cache.stats().saved_ns, 300 + 300 + 400);
        // both residents are proven earners (freq·cost outranks a
        // single-shot 100ns newcomer), so admission control turns the
        // insert away instead of churning either of them out
        cache.insert_costed(fp(3), vec![], &table(1, "c"), 100);
        assert!(cache.peek(fp(1)).is_some(), "frequent entry survives");
        assert!(cache.peek(fp(2)).is_some(), "earner outranks the newcomer");
        assert!(cache.peek(fp(3)).is_none(), "cheap newcomer rejected");
        assert_eq!(cache.stats().evictions, 0, "rejection is not an eviction");
    }

    #[test]
    fn admission_control_rejects_low_value_inserts_under_pressure() {
        let one = table_bytes(&table(1, "x"));
        let cache = EvalCache::with_capacity(one);
        cache.insert_costed(fp(1), vec![], &table(1, "a"), 1_000_000);
        // a cheap insert into a full cache loses to the expensive
        // resident: nothing is evicted, nothing is admitted
        cache.insert_costed(fp(2), vec![], &table(1, "b"), 10);
        assert!(cache.peek(fp(1)).is_some());
        assert!(cache.peek(fp(2)).is_none());
        assert_eq!(cache.stats().evictions, 0);
        // a more expensive insert wins and displaces the resident
        cache.insert_costed(fp(3), vec![], &table(1, "c"), 2_000_000);
        assert!(cache.peek(fp(1)).is_none());
        assert!(cache.peek(fp(3)).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn rejections_age_the_clock_so_losers_eventually_win() {
        let one = table_bytes(&table(1, "x"));
        let cache = EvalCache::with_capacity(one);
        cache.insert_costed(fp(1), vec![], &table(1, "a"), 1_000_000);
        // each rejected cheap insert inflates the clock by its own
        // priority, so sustained demand eventually outbids a resident
        // that has stopped earning hits
        let mut admitted_at = None;
        for i in 0..10_000u64 {
            cache.insert_costed(fp(100 + i), vec![], &table(1, "b"), 50_000);
            if cache.peek(fp(1)).is_none() {
                admitted_at = Some(i);
                break;
            }
        }
        assert!(
            admitted_at.is_some(),
            "stale expensive entry squatted through 10k rejections"
        );
    }

    #[test]
    fn ghost_history_resumes_frequency_across_readmission() {
        let one = table_bytes(&table(1, "x"));
        let cache = EvalCache::with_capacity(one);
        // a recurring fingerprint rejected round after round accumulates
        // ghost frequency, so its candidate priority compounds instead
        // of growing one clock step at a time: against a 10x-cost
        // resident, clock aging alone needs 10 attempts, ghost history
        // roughly halves that
        cache.insert_costed(fp(1), vec![], &table(1, "a"), 10_000_000);
        let mut admitted_at = None;
        for round in 0..64u64 {
            cache.insert_costed(fp(2), vec![], &table(1, "b"), 1_000_000);
            if cache.peek(fp(2)).is_some() {
                admitted_at = Some(round);
                break;
            }
        }
        let round = admitted_at.expect("recurring entry never readmitted");
        assert!(
            round < 9,
            "ghost frequency should compound faster than clock aging alone \
             (admitted at round {round})"
        );
        // invalidation kills the history too: the fingerprint can never
        // be requested again once a dependency version moved
        let cache = EvalCache::with_capacity(one);
        cache.insert_costed(fp(3), vec!["R".into()], &table(1, "a"), 500);
        cache.bump_version("R");
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn estimate_cost_averages_sibling_history() {
        let cache = EvalCache::new();
        assert_eq!(cache.estimate_cost(&["R".into()]), None, "empty cache");
        cache.insert_costed(fp(1), vec!["R".into()], &table(1, "a"), 1_000);
        cache.insert_costed(fp(2), vec!["R".into(), "S".into()], &table(1, "b"), 3_000);
        cache.insert_costed(fp(3), vec!["T".into()], &table(1, "c"), 9_000);
        cache.insert(fp(4), vec!["R".into()], &table(1, "d")); // cost 0: excluded
        assert_eq!(cache.estimate_cost(&["R".into()]), Some(2_000));
        assert_eq!(cache.estimate_cost(&["S".into()]), Some(3_000));
        assert_eq!(cache.estimate_cost(&["U".into()]), None, "no siblings");
    }

    #[test]
    fn cost_survives_the_store_round_trip() {
        use crate::store::MemStore;
        let store = std::sync::Arc::new(MemStore::new());
        let cache = EvalCache::new();
        cache.set_store(Some(store.clone()));
        cache.insert_costed(fp(1), vec!["R".into()], &table(1, "r"), 7_500);
        // a fresh cache loads the entry from the store, cost included
        let warm = EvalCache::new();
        warm.set_store(Some(store));
        assert!(warm.get(fp(1)).is_some());
        assert_eq!(warm.stats().saved_ns, 7_500, "disk hit counts the cost");
        assert_eq!(warm.estimate_cost(&["R".into()]), Some(7_500));
    }
}
