//! Pluggable cache backends: the [`CacheStore`] trait.
//!
//! [`EvalCache`](crate::EvalCache) keeps its hot tier in memory; a
//! `CacheStore` is an optional second tier behind it. Inserting an
//! eligible entry *spills* a copy to the store, and a lookup that misses
//! in memory consults the store before falling back to recomputation —
//! a *disk hit* warms the memory tier again. The cache stays correct
//! with any backend (or none): stores only ever hold byte-exact copies
//! of entries keyed by their full structural fingerprint, so a wrong
//! or missing answer from a store can only cause recomputation, never a
//! wrong result.
//!
//! Two implementations ship:
//!
//! * [`MemStore`] — a process-local map, the reference implementation
//!   (used by tests and as a model of the contract);
//! * [`DiskStore`](crate::disk::DiskStore) — fingerprint-keyed files
//!   under a cache directory, surviving process restarts (the CLI's
//!   `--cache-dir`).
//!
//! ## Cross-process validity
//!
//! Fingerprints mix in per-relation *content versions* and the cache
//! *epoch*, both of which restart at zero in every process. Two
//! processes therefore agree on a fingerprint only while both are in
//! their pristine state (no relation edits, no function-registry
//! changes) **and** looking at the same source data. The first half is
//! enforced by [`EvalCache`](crate::EvalCache): it spills only entries
//! whose epoch and dependency versions are all zero. The second half is
//! the store *namespace*: persistent stores key entries under a digest
//! of the full source database ([`database_digest`]), so pointing one
//! cache directory at a different source degrades to a cold run instead
//! of serving tables computed from other data.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use clio_obs::metrics::{self, Counter};
use clio_relational::database::Database;
use clio_relational::table::Table;

use crate::fingerprint::{Fingerprint, FingerprintBuilder};

/// One cache entry as a backend sees it: the result table, the base
/// relations it was computed from, and its measured recompute cost.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredEntry {
    /// Sorted, deduplicated base-relation dependencies.
    pub deps: Vec<String>,
    /// The memoized result table.
    pub table: Table,
    /// Measured recompute time in nanoseconds (0 when unknown), carried
    /// so a warm restart re-seeds the cost-aware eviction priorities.
    pub cost_ns: u64,
}

/// Point-in-time statistics of one store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Entries written to the backend.
    pub spills: u64,
    /// Lookups answered by the backend.
    pub hits: u64,
    /// Bytes written to the backend (encoded size).
    pub bytes: u64,
    /// Loads (or writes) that failed and were tolerated by falling back
    /// to recomputation — corrupt files, version mismatches, I/O errors.
    pub load_errors: u64,
}

/// Shared bookkeeping for store implementations: local [`StoreStats`]
/// mirrored into the global `cache.spills` / `cache.disk_hits` /
/// `cache.disk_bytes` / `cache.load_errors` counters.
#[derive(Debug, Default)]
pub struct StoreCounters {
    spills: AtomicU64,
    hits: AtomicU64,
    bytes: AtomicU64,
    load_errors: AtomicU64,
}

impl StoreCounters {
    /// Count one spill of `bytes` encoded bytes.
    pub fn record_spill(&self, bytes: u64) {
        self.spills.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
        metrics::incr(Counter::CacheSpills);
        metrics::add(Counter::CacheDiskBytes, bytes);
    }

    /// Count one lookup answered by the backend.
    pub fn record_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        metrics::incr(Counter::CacheDiskHits);
    }

    /// Count one tolerated load/write failure.
    pub fn record_load_error(&self) {
        self.load_errors.fetch_add(1, Ordering::Relaxed);
        metrics::incr(Counter::CacheLoadErrors);
    }

    /// Current statistics.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            spills: self.spills.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            load_errors: self.load_errors.load(Ordering::Relaxed),
        }
    }
}

/// A persistent (or at least out-of-cache) backend for memoized entries.
///
/// Implementations must be safe to share between threads — a
/// `SessionPool` hands one store to every concurrent session. All
/// methods are infallible by signature: a backend that cannot serve a
/// request returns `None`/`false` (counting a load error where
/// appropriate) and the cache recomputes. A store must only return an
/// entry that was previously stored under exactly the same fingerprint.
pub trait CacheStore: Send + Sync + std::fmt::Debug {
    /// Fetch the entry stored under `fp`, if any.
    fn load(&self, fp: Fingerprint) -> Option<StoredEntry>;

    /// Write `entry` under `fp`. Returns whether a new entry was
    /// written (idempotent: spilling an already-present fingerprint is
    /// a cheap no-op returning `false`).
    fn spill(&self, fp: Fingerprint, entry: &StoredEntry) -> bool;

    /// Every entry the backend currently holds, in a deterministic
    /// order (used by `cache load` to pre-warm the memory tier).
    fn load_all(&self) -> Vec<(Fingerprint, StoredEntry)>;

    /// Backend statistics.
    fn stats(&self) -> StoreStats;

    /// A short human-readable description for the `cache` shell command
    /// (e.g. `disk:/tmp/clio-cache`).
    fn describe(&self) -> String;
}

/// The reference in-memory [`CacheStore`]: a fingerprint-keyed map.
/// Survives nothing (it dies with the process) but exercises the whole
/// spill/load protocol, so tests can pin the cache↔store contract
/// without touching the filesystem.
#[derive(Debug, Default)]
pub struct MemStore {
    entries: Mutex<HashMap<Fingerprint, StoredEntry>>,
    counters: StoreCounters,
}

impl MemStore {
    /// An empty store.
    #[must_use]
    pub fn new() -> MemStore {
        MemStore::default()
    }

    fn lock(&self) -> MutexGuard<'_, HashMap<Fingerprint, StoredEntry>> {
        self.entries.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Number of entries held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Is the store empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }
}

impl CacheStore for MemStore {
    fn load(&self, fp: Fingerprint) -> Option<StoredEntry> {
        let entry = self.lock().get(&fp).cloned();
        if entry.is_some() {
            self.counters.record_hit();
        }
        entry
    }

    fn spill(&self, fp: Fingerprint, entry: &StoredEntry) -> bool {
        let mut entries = self.lock();
        if entries.contains_key(&fp) {
            return false;
        }
        let bytes = crate::cache::table_bytes(&entry.table) as u64;
        entries.insert(fp, entry.clone());
        drop(entries);
        self.counters.record_spill(bytes);
        true
    }

    fn load_all(&self) -> Vec<(Fingerprint, StoredEntry)> {
        let mut all: Vec<(Fingerprint, StoredEntry)> =
            self.lock().iter().map(|(&fp, e)| (fp, e.clone())).collect();
        all.sort_by_key(|(fp, _)| *fp);
        all
    }

    fn stats(&self) -> StoreStats {
        self.counters.stats()
    }

    fn describe(&self) -> String {
        format!("mem ({} entries)", self.len())
    }
}

fn hash_value(fp: &mut FingerprintBuilder, v: &clio_relational::value::Value) {
    use clio_relational::value::Value;
    match v {
        Value::Null => {
            fp.number(0);
        }
        Value::Int(i) => {
            fp.number(1).number(*i as u64);
        }
        Value::Float(f) => {
            fp.number(2).number(f.to_bits());
        }
        Value::Str(s) => {
            fp.number(3).text(s);
        }
        Value::Bool(b) => {
            fp.number(4).number(u64::from(*b));
        }
    }
}

/// Digest of a full source database: every relation's name, schema, and
/// rows (in stored order), plus the declared foreign keys. Persistent
/// stores use this as their *namespace* so cache directories are safe
/// to share between runs over different sources — entries written for
/// one source are invisible to sessions over another.
#[must_use]
pub fn database_digest(db: &Database) -> u64 {
    let mut fp = FingerprintBuilder::new("source-db");
    fp.number(db.relation_count() as u64);
    for rel in db.relations() {
        fp.text(rel.name());
        fp.text(&rel.schema().to_string());
        fp.number(rel.len() as u64);
        for row in rel.rows() {
            for v in row {
                hash_value(&mut fp, v);
            }
        }
    }
    for fk in &db.constraints.foreign_keys {
        fp.text(&fk.to_string());
    }
    fp.finish().0
}

#[cfg(test)]
mod tests {
    use super::*;
    use clio_relational::relation::RelationBuilder;
    use clio_relational::schema::{Column, Scheme};
    use clio_relational::value::{DataType, Value};

    fn table(rows: usize, tag: &str) -> Table {
        let scheme = Scheme::new(vec![Column::new("T", "a", DataType::Str)]);
        let rows = (0..rows)
            .map(|i| vec![Value::str(format!("{tag}{i}"))])
            .collect();
        Table::new(scheme, rows)
    }

    fn entry(rows: usize, tag: &str) -> StoredEntry {
        StoredEntry {
            deps: vec!["R".into()],
            table: table(rows, tag),
            cost_ns: 12_345,
        }
    }

    #[test]
    fn mem_store_round_trips_and_counts() {
        let store = MemStore::new();
        assert!(store.load(Fingerprint(1)).is_none());
        assert!(store.spill(Fingerprint(1), &entry(3, "r")));
        assert!(!store.spill(Fingerprint(1), &entry(3, "r")), "idempotent");
        let got = store.load(Fingerprint(1)).expect("hit");
        assert_eq!(got, entry(3, "r"));
        let s = store.stats();
        assert_eq!((s.spills, s.hits, s.load_errors), (1, 1, 0));
        assert_eq!(
            s.bytes,
            crate::cache::table_bytes(&entry(3, "r").table) as u64
        );
        assert_eq!(store.len(), 1);
        assert!(store.describe().contains("mem"));
    }

    #[test]
    fn load_all_is_sorted_by_fingerprint() {
        let store = MemStore::new();
        store.spill(Fingerprint(9), &entry(1, "c"));
        store.spill(Fingerprint(2), &entry(1, "a"));
        store.spill(Fingerprint(5), &entry(1, "b"));
        let fps: Vec<u64> = store.load_all().iter().map(|(fp, _)| fp.0).collect();
        assert_eq!(fps, vec![2, 5, 9]);
    }

    #[test]
    fn database_digest_tracks_content_schema_and_constraints() {
        let base = || {
            let mut db = Database::new();
            db.add_relation(
                RelationBuilder::new("R")
                    .attr_not_null("id", DataType::Str)
                    .row(vec!["1".into()])
                    .build()
                    .unwrap(),
            )
            .unwrap();
            db
        };
        let a = database_digest(&base());
        assert_eq!(a, database_digest(&base()), "deterministic");
        // a content edit changes the digest
        let mut edited = base();
        let rel = RelationBuilder::new("R")
            .attr_not_null("id", DataType::Str)
            .row(vec!["2".into()])
            .build()
            .unwrap();
        edited.replace_relation(rel).unwrap();
        assert_ne!(a, database_digest(&edited));
        // an extra relation changes the digest
        let mut grown = base();
        grown
            .add_relation(
                RelationBuilder::new("S")
                    .attr("x", DataType::Int)
                    .build()
                    .unwrap(),
            )
            .unwrap();
        assert_ne!(a, database_digest(&grown));
        // a constraint changes the digest
        let mut constrained = base();
        constrained.constraints.foreign_keys.push(
            clio_relational::constraints::ForeignKey::simple("R", "id", "R", "id"),
        );
        assert_ne!(a, database_digest(&constrained));
    }
}
