//! Structural fingerprints: deterministic 64-bit digests of evaluation
//! inputs, used as cache keys.
//!
//! A fingerprint must change whenever anything that could change the
//! *bytes* of the cached result changes — relation contents (via the
//! content version fed in by the caller), graph structure, predicate
//! text, algorithm choice. Collisions are possible in principle with a
//! 64-bit digest but need ~2³² live entries to become likely; the cache
//! holds a few hundred.
//!
//! The digest is FNV-1a 64. Unlike `DefaultHasher` (whose stream is only
//! specified within a single process and may change between Rust
//! releases), FNV-1a is a fixed public algorithm, so fingerprints are
//! stable across processes, platforms, and toolchain upgrades — a
//! prerequisite for ever persisting cache state. The
//! `golden_fingerprints_are_stable` test pins exact digests to catch
//! accidental drift.

const FNV_OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A 64-bit structural digest identifying one cached computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u64);

/// Incremental builder for a [`Fingerprint`].
///
/// Every ingredient is length-prefixed (strings) or fixed-width
/// (numbers), so distinct ingredient sequences cannot collide by
/// concatenation (`"ab" + "c"` vs `"a" + "bc"`). The underlying digest
/// is FNV-1a 64 over the ingredient byte stream; numbers are folded in
/// as little-endian 8-byte words.
#[derive(Debug)]
pub struct FingerprintBuilder {
    state: u64,
}

impl FingerprintBuilder {
    /// Start a fingerprint in a named domain (`"F(J)"`, `"D(G).tree"`,
    /// …). The domain keeps structurally similar computations from
    /// sharing keys.
    #[must_use]
    pub fn new(domain: &str) -> FingerprintBuilder {
        let mut b = FingerprintBuilder {
            state: FNV_OFFSET_BASIS,
        };
        b.text(domain);
        b
    }

    fn write(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.state ^= u64::from(byte);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Mix in a string ingredient.
    pub fn text(&mut self, s: &str) -> &mut FingerprintBuilder {
        self.number(s.len() as u64);
        self.write(s.as_bytes());
        self
    }

    /// Mix in a numeric ingredient (content versions, epochs, node ids).
    pub fn number(&mut self, n: u64) -> &mut FingerprintBuilder {
        self.write(&n.to_le_bytes());
        self
    }

    /// Finish and produce the fingerprint.
    #[must_use]
    pub fn finish(&self) -> Fingerprint {
        Fingerprint(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_ingredients_identical_fingerprint() {
        let mut a = FingerprintBuilder::new("F(J)");
        a.text("Children").number(3);
        let mut b = FingerprintBuilder::new("F(J)");
        b.text("Children").number(3);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn domain_and_order_matter() {
        let mut a = FingerprintBuilder::new("F(J)");
        a.text("x").text("y");
        let mut b = FingerprintBuilder::new("D(G).tree");
        b.text("x").text("y");
        let mut c = FingerprintBuilder::new("F(J)");
        c.text("y").text("x");
        assert_ne!(a.finish(), b.finish());
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn length_prefix_blocks_concatenation_collisions() {
        let mut a = FingerprintBuilder::new("t");
        a.text("ab").text("c");
        let mut b = FingerprintBuilder::new("t");
        b.text("a").text("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn versions_change_the_fingerprint() {
        let mut a = FingerprintBuilder::new("F(J)");
        a.text("Children").number(1);
        let mut b = FingerprintBuilder::new("F(J)");
        b.text("Children").number(2);
        assert_ne!(a.finish(), b.finish());
    }

    /// Pins exact FNV-1a 64 digests. These values are part of the cache
    /// key format: if this test ever fails, the hasher drifted and any
    /// persisted fingerprints would be silently invalidated.
    #[test]
    fn golden_fingerprints_are_stable() {
        assert_eq!(
            FingerprintBuilder::new("F(J)").finish().0,
            0x6fe6_2b74_b343_b3ea
        );
        let mut a = FingerprintBuilder::new("F(J)");
        a.text("Children").number(3);
        assert_eq!(a.finish().0, 0xcd96_4730_aa9b_eace);
        let mut b = FingerprintBuilder::new("Q(M)");
        b.text("Children.ID").number(0);
        assert_eq!(b.finish().0, 0xf4dc_1475_3873_90b5);
        assert_eq!(
            FingerprintBuilder::new("D(G).tree").finish().0,
            0x1d45_6285_fef9_4432
        );
    }
}
