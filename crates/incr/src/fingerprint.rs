//! Structural fingerprints: deterministic 64-bit digests of evaluation
//! inputs, used as cache keys.
//!
//! A fingerprint must change whenever anything that could change the
//! *bytes* of the cached result changes — relation contents (via the
//! content version fed in by the caller), graph structure, predicate
//! text, algorithm choice. Collisions are possible in principle with a
//! 64-bit digest but need ~2³² live entries to become likely; the cache
//! holds a few hundred.

use std::collections::hash_map::DefaultHasher;
use std::hash::Hasher;

/// A 64-bit structural digest identifying one cached computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u64);

/// Incremental builder for a [`Fingerprint`].
///
/// Every ingredient is length-prefixed (strings) or fixed-width
/// (numbers), so distinct ingredient sequences cannot collide by
/// concatenation (`"ab" + "c"` vs `"a" + "bc"`). `DefaultHasher::new()`
/// is specified to produce identical streams for identical input within
/// a process, which is all a per-session in-memory cache needs.
#[derive(Debug)]
pub struct FingerprintBuilder {
    hasher: DefaultHasher,
}

impl FingerprintBuilder {
    /// Start a fingerprint in a named domain (`"F(J)"`, `"D(G).tree"`,
    /// …). The domain keeps structurally similar computations from
    /// sharing keys.
    #[must_use]
    pub fn new(domain: &str) -> FingerprintBuilder {
        let mut b = FingerprintBuilder {
            hasher: DefaultHasher::new(),
        };
        b.text(domain);
        b
    }

    /// Mix in a string ingredient.
    pub fn text(&mut self, s: &str) -> &mut FingerprintBuilder {
        self.hasher.write_u64(s.len() as u64);
        self.hasher.write(s.as_bytes());
        self
    }

    /// Mix in a numeric ingredient (content versions, epochs, node ids).
    pub fn number(&mut self, n: u64) -> &mut FingerprintBuilder {
        self.hasher.write_u64(n);
        self
    }

    /// Finish and produce the fingerprint.
    #[must_use]
    pub fn finish(&self) -> Fingerprint {
        Fingerprint(self.hasher.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_ingredients_identical_fingerprint() {
        let mut a = FingerprintBuilder::new("F(J)");
        a.text("Children").number(3);
        let mut b = FingerprintBuilder::new("F(J)");
        b.text("Children").number(3);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn domain_and_order_matter() {
        let mut a = FingerprintBuilder::new("F(J)");
        a.text("x").text("y");
        let mut b = FingerprintBuilder::new("D(G).tree");
        b.text("x").text("y");
        let mut c = FingerprintBuilder::new("F(J)");
        c.text("y").text("x");
        assert_ne!(a.finish(), b.finish());
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn length_prefix_blocks_concatenation_collisions() {
        let mut a = FingerprintBuilder::new("t");
        a.text("ab").text("c");
        let mut b = FingerprintBuilder::new("t");
        b.text("a").text("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn versions_change_the_fingerprint() {
        let mut a = FingerprintBuilder::new("F(J)");
        a.text("Children").number(1);
        let mut b = FingerprintBuilder::new("F(J)");
        b.text("Children").number(2);
        assert_ne!(a.finish(), b.finish());
    }
}
