//! Clio at scale: full disjunctions, illustrations, and walks over larger
//! synthetic schemas, with quick wall-clock comparisons of the naive and
//! optimized algorithms (the Criterion benches in `clio-bench` measure
//! these rigorously; this example is a fast demonstration).
//!
//! ```sh
//! cargo run --release --example large_schema
//! ```

use std::time::Instant;

use clio::prelude::*;

fn main() -> Result<()> {
    let funcs = FuncRegistry::with_builtins();

    println!("== full disjunction: naive vs outer-join plan (chains) ==");
    println!(
        "{:>6} {:>8} {:>12} {:>12} {:>8}",
        "nodes", "rows", "naive", "outer-join", "|D(G)|"
    );
    for n in [3usize, 5, 7] {
        let spec = SyntheticSpec {
            topology: Topology::Chain,
            relations: n,
            rows: 200,
            match_rate: 0.7,
            payload_attrs: 1,
            seed: 11,
        };
        let w = generate(&spec);

        let t = Instant::now();
        let d1 = full_disjunction(&w.db, &w.graph, FdAlgo::Naive, &funcs)?;
        let naive = t.elapsed();

        let t = Instant::now();
        let d2 = full_disjunction(&w.db, &w.graph, FdAlgo::OuterJoin, &funcs)?;
        let outer = t.elapsed();

        assert_eq!(d1.len(), d2.len(), "algorithms must agree");
        println!(
            "{n:>6} {:>8} {:>12.2?} {:>12.2?} {:>8}",
            spec.rows,
            naive,
            outer,
            d1.len()
        );
    }

    println!("\n== cyclic graph: naive path only ==");
    let spec = SyntheticSpec {
        topology: Topology::Cycle,
        relations: 5,
        rows: 100,
        match_rate: 0.7,
        payload_attrs: 1,
        seed: 13,
    };
    let w = generate(&spec);
    let t = Instant::now();
    let d = full_disjunction(&w.db, &w.graph, FdAlgo::Auto, &funcs)?;
    println!(
        "5-node cycle, 100 rows/rel: {} associations in {:.2?} \
         ({} coverage categories)",
        d.len(),
        t.elapsed(),
        d.categories().len()
    );

    println!("\n== minimal sufficient illustration at scale ==");
    let spec = SyntheticSpec {
        topology: Topology::Star,
        relations: 5,
        rows: 300,
        match_rate: 0.5,
        payload_attrs: 1,
        seed: 17,
    };
    let w = generate(&spec);
    let population = w.mapping.examples(&w.db, &funcs)?;
    let t = Instant::now();
    let ill = Illustration::minimal_sufficient(&population, w.mapping.target.arity());
    println!(
        "population {} examples -> minimal sufficient illustration of {} \
         ({} categories) in {:.2?}",
        population.len(),
        ill.len(),
        ill.category_histogram().len(),
        t.elapsed()
    );
    assert!(is_sufficient(
        &ill.examples,
        &population,
        w.mapping.target.arity(),
        SufficiencyScope::mapping()
    ));

    println!("\n== data walks over a 60-relation knowledge graph ==");
    let knowledge = clio::datagen::synthetic::random_knowledge(60, 30, 23);
    let spec = SyntheticSpec {
        topology: Topology::Chain,
        relations: 2,
        rows: 10,
        match_rate: 1.0,
        payload_attrs: 1,
        seed: 29,
    };
    let w = generate(&spec);
    let mapping = w.mapping.clone();
    let t = Instant::now();
    let paths = knowledge.paths("R0", "R59", 6);
    println!(
        "paths R0 -> R59 (<= 6 steps): {} found in {:.2?}",
        paths.len(),
        t.elapsed()
    );
    let _ = mapping;
    Ok(())
}
