//! Quickstart: build a schema mapping interactively, driven by data
//! examples, and read the generated SQL.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use clio::prelude::*;

fn main() -> Result<()> {
    // The paper's Figure-1 source database and Kids target schema.
    let db = paper_database();
    let target = kids_target();
    println!("== source schema ==");
    for rel in db.relations() {
        println!("  {}", rel.schema());
    }
    println!("\n== target schema ==\n  {target}\n");

    // A session holds workspaces (one per mapping alternative), schema
    // knowledge mined from foreign keys, and a value index for chases.
    let mut session = Session::new(db, target);

    // v1, v2: identity correspondences into Kids.
    session.add_correspondence("Children.ID", "ID")?;
    session.add_correspondence("Children.name", "name")?;
    println!("== target preview after v1, v2 (WYSIWYG) ==");
    print!("{}", session.target_preview()?);

    // v3: Parents.affiliation — Parents is not linked yet, so Clio walks
    // the schema knowledge and proposes one workspace per way of joining
    // Children to Parents (mother vs father).
    let scenarios = session.add_correspondence("Parents.affiliation", "affiliation")?;
    println!("\n== affiliation scenarios ==");
    for id in &scenarios {
        let w = session.workspaces().iter().find(|w| w.id == *id).unwrap();
        println!("workspace {}: {}", w.id, w.description);
    }

    // Pick the father scenario (the paper's Scenario 1), then accept.
    let father = scenarios
        .iter()
        .find(|id| {
            let w = session.workspaces().iter().find(|w| w.id == **id).unwrap();
            w.description.contains("fid")
        })
        .copied()
        .expect("father scenario exists");
    session.confirm(father)?;

    println!("\n== illustration of the active mapping ==");
    let db_ref = session.database().clone();
    let w = session.active().unwrap();
    let scheme = w.mapping.graph.scheme(&db_ref)?;
    print!("{}", w.illustration.render(&w.mapping.graph, &scheme));

    // Generate the SQL Clio would install for this mapping.
    let sql = generate_sql(
        &w.mapping,
        &db_ref,
        &SqlOptions {
            root: Some("Children".into()),
            create_view: true,
        },
    )?;
    println!("\n== generated SQL ==\n{sql}");
    Ok(())
}
