//! Mapping refinement at the session level: the paper's Section-6
//! scenarios.
//!
//! * **Example 6.1** — accept *two* complementary mappings for one target
//!   (mother's phone when there is a mother, father's otherwise) using
//!   filters `mid IS NOT NULL` / `mid IS NULL`.
//! * **Example 6.2** — a second correspondence for an already-mapped
//!   attribute spawns an alternative mapping that reuses the query graph
//!   and all other correspondences.
//! * Data trimming with positive/negative example feedback.
//!
//! ```sh
//! cargo run --example refinement_session
//! ```

use clio::prelude::*;

fn main() -> Result<()> {
    let db = paper_database();
    let funcs = FuncRegistry::with_builtins();

    println!("==== Example 6.1: complementary mappings for contactPh ====");
    // Mapping A: phone via the mother (mid); loses motherless children.
    let knowledge = paper_knowledge();
    let mut g = QueryGraph::new();
    let c = g.add_node(Node::new("Children"))?;
    g.add_node(Node::new("Parents"))?;
    g.add_edge(c, 1, parse_expr("Children.mid = Parents.ID")?)?;
    let base = Mapping::new(g, kids_target())
        .with_correspondence(ValueCorrespondence::identity("Children.ID", "ID"))
        .with_correspondence(ValueCorrespondence::identity("Children.name", "name"))
        .with_target_not_null_filters();
    let walks = data_walk(&base, &db, &knowledge, "Parents", "PhoneDir", 3, &funcs)?;
    let mut mapping_a = walks[0].mapping.clone();
    mapping_a.set_correspondence(ValueCorrespondence::identity(
        "PhoneDir.number",
        "contactPh",
    ));
    let mapping_a = mapping_a.with_source_filter(parse_expr("Children.mid IS NOT NULL")?);

    // Its illustration shows the problem: motherless children vanish.
    let out_a = mapping_a.evaluate(&db, &funcs)?;
    println!("mapping A (mother's phone) produces {} kids:", out_a.len());
    print!("{out_a}");

    // Mapping B: father's phone, only when there is no mother.
    let mut g = QueryGraph::new();
    let c = g.add_node(Node::new("Children"))?;
    let p = g.add_node(Node::new("Parents"))?;
    let ph = g.add_node(Node::new("PhoneDir"))?;
    g.add_edge(c, p, parse_expr("Children.fid = Parents.ID")?)?;
    g.add_edge(p, ph, parse_expr("PhoneDir.ID = Parents.ID")?)?;
    let mapping_b = Mapping::new(g, kids_target())
        .with_correspondence(ValueCorrespondence::identity("Children.ID", "ID"))
        .with_correspondence(ValueCorrespondence::identity("Children.name", "name"))
        .with_correspondence(ValueCorrespondence::identity(
            "PhoneDir.number",
            "contactPh",
        ))
        .with_source_filter(parse_expr("Children.mid IS NULL")?)
        .with_target_not_null_filters();
    let out_b = mapping_b.evaluate(&db, &funcs)?;
    println!(
        "\nmapping B (father's phone for motherless kids) produces {} kid(s):",
        out_b.len()
    );
    print!("{out_b}");

    // The accepted union covers everyone exactly once.
    let mut union = Table::empty(out_a.scheme().clone());
    for row in out_a.rows().iter().chain(out_b.rows()) {
        union.push_distinct(row.clone());
    }
    println!("\nunion of both accepted mappings ({} kids):", union.len());
    print!("{union}");

    println!("\n==== Example 6.2: alternative computation of an attribute ====");
    // BusSchedule from SBPS; then a second correspondence computes it
    // from a different source (docid as a stand-in for class schedules).
    let mut g = QueryGraph::new();
    let c = g.add_node(Node::new("Children"))?;
    let s = g.add_node(Node::new("SBPS"))?;
    g.add_edge(c, s, parse_expr("Children.ID = SBPS.ID")?)?;
    let with_bus = Mapping::new(g, kids_target())
        .with_correspondence(ValueCorrespondence::identity("Children.ID", "ID"))
        .with_correspondence(ValueCorrespondence::identity("SBPS.time", "BusSchedule"))
        .with_target_not_null_filters();

    let mut rolled_back = QueryGraph::new();
    rolled_back.add_node(Node::new("Children"))?;
    let outcome = add_correspondence(
        &with_bus,
        ValueCorrespondence::parse("'computed-from-' || Children.docid", "BusSchedule")?,
        Some(&rolled_back),
    );
    match outcome {
        AddOutcome::NewAlternative {
            alternative,
            replaced,
        } => {
            println!(
                "spawned an alternative mapping (replacing `{}`):",
                replaced.expr
            );
            println!("{alternative}");
            println!(
                "reused correspondences: {}",
                alternative.correspondences.len()
            );
        }
        AddOutcome::Extended(_) => unreachable!("BusSchedule was already mapped"),
    }

    println!("==== data trimming with example feedback ====");
    let trimmed = require_target_attribute(&with_bus, "BusSchedule");
    let effect = trim_effect(&with_bus, &trimmed, &db, &funcs)?;
    println!(
        "requiring BusSchedule: positives {} -> {}; newly negative examples:",
        effect.positive_before, effect.positive_after
    );
    for e in &effect.newly_negative {
        println!("  kid {} (BusSchedule is null)", e.target[0]);
    }
    Ok(())
}
