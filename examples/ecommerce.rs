//! E-commerce data integration — the domain the paper's introduction
//! motivates ("E-commerce and other data-intensive applications rely on
//! being able to re-use and integrate data from multiple, often legacy
//! sources").
//!
//! A legacy order-management schema with cryptic names (`ORD_HDR`,
//! `ORD_LN`, `CUST_MST`, `SKU_REF`, `SHIP_LOG`) is mapped onto a clean
//! `OrderSummary` target using walks, a chase into the cryptically-named
//! shipping log, verification, and aggregation for totals.
//!
//! ```sh
//! cargo run --example ecommerce
//! ```

use clio::prelude::*;

fn build_source() -> Result<Database> {
    let mut db = Database::new();
    db.add_relation(
        RelationBuilder::new("ORD_HDR") // order header
            .attr_not_null("ord_no", DataType::Str)
            .attr("cust_no", DataType::Str)
            .attr("ord_dt", DataType::Str)
            .row(vec!["O-1001".into(), "C-7".into(), "2001-05-20".into()])
            .row(vec!["O-1002".into(), "C-9".into(), "2001-05-21".into()])
            .row(vec!["O-1003".into(), "C-7".into(), "2001-05-22".into()])
            .row(vec!["O-1004".into(), Value::Null, "2001-05-23".into()]) // walk-in sale
            .build()?,
    )?;
    db.add_relation(
        RelationBuilder::new("ORD_LN") // order lines
            .attr_not_null("ord_no", DataType::Str)
            .attr_not_null("ln_no", DataType::Int)
            .attr("sku", DataType::Str)
            .attr("qty", DataType::Int)
            .attr("unit_price", DataType::Int)
            .row(vec![
                "O-1001".into(),
                1i64.into(),
                "SKU-A".into(),
                2i64.into(),
                500i64.into(),
            ])
            .row(vec![
                "O-1001".into(),
                2i64.into(),
                "SKU-B".into(),
                1i64.into(),
                1250i64.into(),
            ])
            .row(vec![
                "O-1002".into(),
                1i64.into(),
                "SKU-A".into(),
                5i64.into(),
                480i64.into(),
            ])
            .row(vec![
                "O-1003".into(),
                1i64.into(),
                "SKU-C".into(),
                1i64.into(),
                9900i64.into(),
            ])
            .build()?,
    )?;
    db.add_relation(
        RelationBuilder::new("CUST_MST") // customer master
            .attr_not_null("cust_no", DataType::Str)
            .attr("nm", DataType::Str)
            .attr("region", DataType::Str)
            .row(vec!["C-7".into(), "Acme Corp".into(), "EMEA".into()])
            .row(vec!["C-9".into(), "Globex".into(), "AMER".into()])
            .row(vec!["C-11".into(), "Initech".into(), "APAC".into()]) // no orders yet
            .build()?,
    )?;
    db.add_relation(
        RelationBuilder::new("SHIP_LOG") // the cryptic one found by chasing
            .attr_not_null("ref".to_owned() + "_no", DataType::Str)
            .attr("carrier", DataType::Str)
            .attr("shipped_dt", DataType::Str)
            .row(vec!["O-1001".into(), "FedEx".into(), "2001-05-22".into()])
            .row(vec!["O-1002".into(), "UPS".into(), "2001-05-24".into()])
            .build()?,
    )?;
    db.constraints.foreign_keys.extend([
        ForeignKey::simple("ORD_HDR", "cust_no", "CUST_MST", "cust_no"),
        ForeignKey::simple("ORD_LN", "ord_no", "ORD_HDR", "ord_no"),
    ]);
    db.check_constraints()?;
    Ok(db)
}

fn target() -> RelSchema {
    RelSchema::new(
        "OrderSummary",
        vec![
            Attribute::not_null("order_id", DataType::Str),
            Attribute::new("customer", DataType::Str),
            Attribute::new("region", DataType::Str),
            Attribute::new("carrier", DataType::Str),
            Attribute::new("total_cents", DataType::Int),
        ],
    )
    .expect("static schema")
}

fn main() -> Result<()> {
    let db = build_source()?;
    let funcs = FuncRegistry::with_builtins();

    println!("== legacy source ==");
    for rel in db.relations() {
        println!("  {}", rel.schema());
    }

    let mut session = Session::new(db.clone(), target());

    // 1. the obvious correspondences
    session.add_correspondence("ORD_HDR.ord_no", "order_id")?;
    // CUST_MST is not linked: the walk proposes the cust_no FK scenario
    let scenarios = session.add_correspondence("CUST_MST.nm", "customer")?;
    println!("\ncustomer-link scenarios: {}", scenarios.len());
    session.confirm(scenarios[0])?;
    session.add_correspondence("CUST_MST.region", "region")?;

    // 2. where is shipping info? No FK points at SHIP_LOG — chase a
    //    known order number.
    let chases = session.data_chase("ORD_HDR", "ord_no", &Value::str("O-1001"))?;
    println!("\nchase O-1001 found {} scenario(s):", chases.len());
    for id in &chases {
        let w = session.workspaces().iter().find(|w| w.id == *id).unwrap();
        println!("  workspace {}: {}", w.id, w.description);
    }
    let ship = chases
        .iter()
        .find(|id| {
            let w = session.workspaces().iter().find(|w| w.id == **id).unwrap();
            w.mapping.graph.node_by_alias("SHIP_LOG").is_some()
        })
        .copied()
        .expect("SHIP_LOG scenario");
    session.confirm(ship)?;
    session.add_correspondence("SHIP_LOG.carrier", "carrier")?;

    // 3. WYSIWYG so far: orders with customer, region, carrier
    println!("\n== target preview (before totals) ==");
    print!("{}", session.target_preview()?);

    // 4. verify: the walk-in sale O-1004 has no customer; totals unmapped
    println!("\n== verification ==");
    for f in session.verify_active(&[vec!["order_id".into()]])? {
        println!("- {f}");
    }

    // 5. order totals are SET-VALUED: sum over all order lines. Compute
    //    with the aggregation operator and register as a derived relation,
    //    then map it like any other source.
    let lines = db.relation("ORD_LN")?.to_table("L");
    let totals = group_by(
        &lines,
        &["L.ord_no"],
        &[Aggregate {
            func: AggFunc::Sum,
            expr: parse_expr("L.qty * L.unit_price")?,
            output: Column::new("T", "total_cents", DataType::Int),
        }],
        &funcs,
    )?;
    println!("\n== derived ORDER_TOTALS (sum of qty * unit_price per order) ==");
    print!("{totals}");

    // materialize the derived relation into the source and extend the DB
    let mut db2 = db.clone();
    let mut totals_rel = RelationBuilder::new("ORDER_TOTALS")
        .attr_not_null("ord_no", DataType::Str)
        .attr("total_cents", DataType::Int);
    for row in totals.rows() {
        totals_rel = totals_rel.row(row.clone());
    }
    db2.add_relation(totals_rel.build()?)?;

    // continue the session over the extended database: rebuild, reload
    // the mapping, chase the totals in
    let mapping_script = clio::core::script::write_mapping(&session.active().unwrap().mapping);
    let mut session2 = Session::new(db2, target());
    session2.adopt_mapping(
        clio::core::script::parse_mapping(&mapping_script)?,
        "resumed",
    )?;
    let chases = session2.data_chase("ORD_HDR", "ord_no", &Value::str("O-1001"))?;
    let totals_ws = chases
        .iter()
        .find(|id| {
            let w = session2.workspaces().iter().find(|w| w.id == **id).unwrap();
            w.mapping.graph.node_by_alias("ORDER_TOTALS").is_some()
        })
        .copied()
        .expect("ORDER_TOTALS scenario");
    session2.confirm(totals_ws)?;
    session2.add_correspondence("ORDER_TOTALS.total_cents", "total_cents")?;

    println!("\n== final target ==");
    print!("{}", session2.target_preview()?);

    println!("\n== final SQL ==");
    let w = session2.active().unwrap();
    let db_ref = session2.database().clone();
    println!(
        "{}",
        generate_sql(
            &w.mapping,
            &db_ref,
            &SqlOptions {
                root: Some("ORD_HDR".into()),
                create_view: true
            }
        )?
    );
    Ok(())
}
