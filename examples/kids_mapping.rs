//! The complete Section-2 user scenario, replayed end to end:
//! correspondences v1–v5, the affiliation walk (Figure 3), the phone walk
//! with a `Parents2` copy (Figure 4), the chase of Maya's ID 002
//! (Figure 5), the required-field refinement, and the final
//! `CREATE VIEW Kids` SQL.
//!
//! ```sh
//! cargo run --example kids_mapping
//! ```

use clio::prelude::*;

fn banner(title: &str) {
    println!("\n==== {title} ====");
}

fn main() -> Result<()> {
    let db = paper_database();
    let mut session = Session::new(db, kids_target());

    banner("step 1: correspondences v1, v2 (Children.ID, Children.name)");
    session.add_correspondence("Children.ID", "ID")?;
    session.add_correspondence("Children.name", "name")?;
    print!("{}", session.target_preview()?);

    banner("step 2: v3 Parents.affiliation - two scenarios (Figure 3)");
    let scenarios = session.add_correspondence("Parents.affiliation", "affiliation")?;
    for id in &scenarios {
        let w = session.workspaces().iter().find(|w| w.id == *id).unwrap();
        println!("scenario (workspace {}): {}", w.id, w.description);
    }
    // Maya's example disambiguates: she recognizes mid/fid as mother/
    // father; she picks Scenario 1 (father's affiliation).
    let father = scenarios
        .iter()
        .find(|id| {
            let w = session.workspaces().iter().find(|w| w.id == **id).unwrap();
            w.description.contains("fid")
        })
        .copied()
        .unwrap();
    session.confirm(father)?;
    println!("confirmed the father scenario");

    banner("step 3: data walk to PhoneDir (Figure 4)");
    let walks = session.data_walk(None, "PhoneDir")?;
    for id in &walks {
        let w = session.workspaces().iter().find(|w| w.id == *id).unwrap();
        println!("scenario (workspace {}): {}", w.id, w.description);
    }
    // The user chooses the mother's phone: the walk that goes through a
    // second copy of Parents (Parents2) via mid.
    let mothers_phone = walks
        .iter()
        .find(|id| {
            let w = session.workspaces().iter().find(|w| w.id == **id).unwrap();
            w.mapping.graph.node_by_alias("Parents2").is_some() && w.description.contains("mid")
        })
        .copied()
        .expect("mother's-phone scenario");
    session.confirm(mothers_phone)?;
    session.add_correspondence("PhoneDir.number", "contactPh")?;
    println!("confirmed mother's phone; v4 added");

    banner("step 4: chase Maya's ID 002 to find the bus schedule (Figure 5)");
    let chases = session.data_chase("Children", "ID", &Value::str("002"))?;
    for id in &chases {
        let w = session.workspaces().iter().find(|w| w.id == *id).unwrap();
        println!("scenario (workspace {}): {}", w.id, w.description);
    }
    // SBPS — "School Bus Pickup Schedule" — is the right link.
    let sbps = chases
        .iter()
        .find(|id| {
            let w = session.workspaces().iter().find(|w| w.id == **id).unwrap();
            w.mapping.graph.node_by_alias("SBPS").is_some()
        })
        .copied()
        .unwrap();
    session.confirm(sbps)?;
    session.add_correspondence("SBPS.time", "BusSchedule")?;
    println!("confirmed SBPS; v5 added");

    banner("step 5: the target view (WYSIWYG)");
    let preview = session.target_preview()?;
    print!("{preview}");

    banner("step 6: illustration of the final mapping");
    let db_ref = session.database().clone();
    {
        let w = session.active().unwrap();
        let scheme = w.mapping.graph.scheme(&db_ref)?;
        print!("{}", w.illustration.render(&w.mapping.graph, &scheme));
    }

    banner("step 7: generated SQL (paper Section 2)");
    let w = session.active().unwrap();
    let sql = generate_sql(
        &w.mapping,
        &db_ref,
        &SqlOptions {
            root: Some("Children".into()),
            create_view: true,
        },
    )?;
    println!("{sql}");

    banner("step 8: refine - BusSchedule is required (left join -> inner join)");
    let required = require_target_attribute(&w.mapping, "BusSchedule");
    let effect = trim_effect(
        &w.mapping,
        &required,
        &db_ref,
        &FuncRegistry::with_builtins(),
    )?;
    println!(
        "positives {} -> {}; {} example(s) turned negative",
        effect.positive_before,
        effect.positive_after,
        effect.newly_negative.len()
    );
    let sql = generate_sql(
        &required,
        &db_ref,
        &SqlOptions {
            root: Some("Children".into()),
            create_view: true,
        },
    )?;
    println!("{sql}");
    Ok(())
}
