//! Data walks and data chases on an *unfamiliar* synthetic source:
//! demonstrates how the two data-linking operators explore a schema the
//! user does not know, how alternatives are ranked, and how a confirmed
//! chase teaches the schema knowledge.
//!
//! ```sh
//! cargo run --example walk_and_chase
//! ```

use clio::prelude::*;

fn main() -> Result<()> {
    // A 6-relation random-tree source with dangling and null links.
    let spec = SyntheticSpec {
        topology: Topology::RandomTree,
        relations: 6,
        rows: 40,
        match_rate: 0.7,
        payload_attrs: 2,
        seed: 7,
    };
    let w = generate(&spec);
    println!("== synthetic source ==");
    for rel in w.db.relations() {
        println!("  {} ({} rows)", rel.schema(), rel.len());
    }
    println!("\nknowledge: {} join specs", w.knowledge.specs().len());

    // Start a mapping from R0 only.
    let funcs = FuncRegistry::with_builtins();
    let mut graph = QueryGraph::new();
    graph.add_node(Node::new("R0"))?;
    let mapping = Mapping::new(graph, w.target.clone())
        .with_correspondence(ValueCorrespondence::identity("R0.p0", "B0"))
        .with_target_not_null_filters();

    // Walk to the farthest relation: every simple path in the knowledge
    // graph becomes a ranked alternative.
    let far = format!("R{}", spec.relations - 1);
    let alts = data_walk(&mapping, &w.db, &w.knowledge, "R0", &far, 6, &funcs)?;
    println!(
        "\n== data walk R0 -> {far}: {} alternative(s) ==",
        alts.len()
    );
    for (i, a) in alts.iter().enumerate() {
        println!(
            "  #{i}: {} steps, {} new node(s): {}",
            a.path_len,
            a.new_nodes.len(),
            a.description
        );
    }

    // Take the best-ranked walk and look at its illustration.
    let chosen = &alts[0].mapping;
    let population = chosen.examples(&w.db, &funcs)?;
    let ill = Illustration::minimal_sufficient(&population, chosen.target.arity());
    println!(
        "\nminimal sufficient illustration: {} example(s) over {} association(s), \
         {} coverage categories",
        ill.len(),
        population.len(),
        ill.category_histogram().len()
    );

    // Chase a value the user recognizes: pick some id of R0 and see where
    // else it occurs (link attributes of other relations reference it).
    let index = ValueIndex::build(&w.db);
    let probe = Value::str("r0-1");
    let chases = data_chase(&mapping, &w.db, &index, "R0", "id", &probe, &funcs)?;
    println!(
        "\n== data chase of `{probe}` from R0.id: {} scenario(s) ==",
        chases.len()
    );
    for c in &chases {
        println!(
            "  {} (value occurs in {} row(s))",
            c.description, c.occurrence_count
        );
    }

    // Confirming a chase records the discovered join in the knowledge.
    if let Some(first) = chases.first() {
        let mut knowledge = SchemaKnowledge::new();
        clio::core::operators::chase::confirm_chase(&mut knowledge, first, "R0", "id");
        println!(
            "\nafter confirmation, knowledge knows {} spec(s) between R0 and {}",
            knowledge.specs_between("R0", &first.relation).len(),
            first.relation
        );
    }
    Ok(())
}
